// ServiceSession: one long-lived connection through the streaming
// service — an ingest queue feeding a fused pipeline that is planned
// once and driven once per micro-batch, terminating in count-based
// windowed aggregation (docs/service.md).
//
// The session is the put/service pair of the STREAMS model (ROADMAP
// item 3): offer() is the put procedure (runs on the producer's thread,
// cheap, just enqueues), drain() is the service procedure (runs on a
// ForkJoinPool worker under the driver, pushes whole batches through the
// planned chain). The pipeline is the same machinery batch terminals
// use — fuse_source + StaticChainStage + the Sink push protocol — with
// exactly two service-specific pieces:
//
//   BatchSpliterator  a rebindable contiguous source (Spliterator +
//                     WindowedSource + ReusableSource): bind() points it
//                     at the next drained batch, FusedPipeline::reset()
//                     re-arms it, and the chain is driven again without
//                     re-planning or re-allocating anything.
//   WindowSink        a persistent terminal sink whose tumbling/sliding
//                     count windows span batch boundaries: begin()/end()
//                     per batch are no-ops, so window results depend only
//                     on the element sequence — never on how the queue
//                     happened to slice it into micro-batches. That
//                     independence is what the differential suite checks
//                     against one-shot batch pipelines, bit for bit.
//
// Windows are element-count based: a tumbling window of N emits one
// collector result per N chain outputs; a sliding window of (N, slide)
// emits over the last N outputs every `slide` outputs once N have been
// seen. A trailing partial window is never emitted (same convention both
// sides of the differential test).
//
// Telemetry: every drained batch runs under a streams::RunScope with
// PlanOrigin::kService (one RunRecord per batch) and records its service
// time into a per-session latency histogram the driver exports.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "observe/config.hpp"
#include "observe/histogram.hpp"
#include "service/queue.hpp"
#include "streams/collector.hpp"
#include "streams/fusion.hpp"
#include "streams/plan.hpp"
#include "streams/sink.hpp"
#include "streams/spliterator.hpp"
#include "streams/static_fusion.hpp"
#include "support/assert.hpp"

namespace pls::service {

/// Contiguous source over the session's current drained batch. bind()
/// repoints it (the span must stay alive for the drive — the session's
/// drain buffer does), rearm() rewinds it; together they make the fused
/// chain reusable across micro-batches. Never splits: one micro-batch is
/// one leaf by design (parallelism comes from many sessions, and window
/// state is inherently sequential).
template <typename T>
class BatchSpliterator final : public streams::Spliterator<T>,
                               public streams::WindowedSource,
                               public streams::ReusableSource {
 public:
  using Action = typename streams::Spliterator<T>::Action;

  void bind(const T* data, std::size_t n) {
    data_ = data;
    begin_ = 0;
    end_ = n;
  }

  void rearm() override { begin_ = 0; }

  bool try_advance(Action action) override {
    if (begin_ >= end_) return false;
    action(data_[begin_++]);
    return true;
  }

  void for_each_remaining(Action action) override {
    for (std::size_t i = begin_; i < end_; ++i) action(data_[i]);
    begin_ = end_;
  }

  std::pair<const T*, std::size_t> try_contiguous_chunk(
      std::size_t max_n) override {
    const std::size_t remaining = end_ - begin_;
    const std::size_t n = remaining < max_n ? remaining : max_n;
    if (n == 0) return {nullptr, 0};
    const T* p = data_ + begin_;
    begin_ += n;
    return {p, n};
  }

  std::unique_ptr<streams::Spliterator<T>> try_split() override {
    return nullptr;
  }

  std::uint64_t estimate_size() const override { return end_ - begin_; }

  streams::Characteristics characteristics() const override {
    return streams::kOrdered | streams::kSized | streams::kSubsized |
           streams::kImmutable;
  }

  std::optional<streams::OutputWindow> try_output_window() const override {
    return streams::OutputWindow{begin_, 1, end_ - begin_};
  }

 private:
  const T* data_ = nullptr;
  std::size_t begin_ = 0;
  std::size_t end_ = 0;
};

/// Persistent windowed-aggregation terminal: folds chain outputs into
/// count windows with an ordinary Collector and emits one finished
/// result per complete window. Lives as long as the session; batch
/// begin()/end() deliberately do nothing so windows span batches.
template <typename Out, typename C>
class WindowSink final : public streams::Sink<Out> {
 public:
  using result_type = typename C::result_type;
  using accumulation_type = typename C::accumulation_type;
  using Emit = std::function<void(result_type)>;

  WindowSink(C collector, std::size_t window, std::size_t slide, Emit emit)
      : collector_(std::move(collector)),
        window_(window),
        slide_(slide),
        emit_(std::move(emit)) {
    PLS_CHECK(window_ > 0, "window size must be > 0");
    PLS_CHECK(slide_ > 0 && slide_ <= window_,
              "window slide must be in [1, window]");
  }

  void begin(std::uint64_t) override {}  // windows span batches
  void end() override {}

  void accept(const Out& value) override {
    if (slide_ == window_) {
      accept_tumbling(value);
    } else {
      accept_sliding(value);
    }
  }

  /// Complete windows emitted so far.
  std::uint64_t windows_emitted() const noexcept { return emitted_; }

 private:
  /// Tumbling: accumulate incrementally, finish and restart every
  /// `window_` elements. O(1) amortised per element.
  void accept_tumbling(const Out& value) {
    if (!acc_.has_value()) acc_.emplace(collector_.supply());
    collector_.accumulate(*acc_, value);
    if (++filled_ == window_) {
      emit_(collector_.finish(std::move(*acc_)));
      ++emitted_;
      acc_.reset();
      filled_ = 0;
    }
  }

  /// Sliding: keep the last `window_` elements and re-fold the collector
  /// over them (oldest first — encounter order) at every emission point.
  /// O(window) per emission; overlapping windows make incremental
  /// accumulation impossible for a general (non-invertible) collector.
  void accept_sliding(const Out& value) {
    ring_.push_back(value);
    if (ring_.size() > window_) ring_.pop_front();
    ++seen_;
    if (seen_ < window_ || (seen_ - window_) % slide_ != 0) return;
    accumulation_type acc = collector_.supply();
    for (const Out& e : ring_) collector_.accumulate(acc, e);
    emit_(collector_.finish(std::move(acc)));
    ++emitted_;
  }

  C collector_;
  const std::size_t window_;
  const std::size_t slide_;
  Emit emit_;
  std::uint64_t emitted_ = 0;

  // tumbling state
  std::optional<accumulation_type> acc_;
  std::size_t filled_ = 0;

  // sliding state
  std::deque<Out> ring_;
  std::uint64_t seen_ = 0;
};

/// Type-erased face of a session, what the driver multiplexes. The
/// claim flag serialises drains *within* one session (window state is
/// sequential) while the driver runs many sessions' drains concurrently.
class SessionBase {
 public:
  explicit SessionBase(std::uint64_t id) : id_(id) {}
  virtual ~SessionBase() = default;

  SessionBase(const SessionBase&) = delete;
  SessionBase& operator=(const SessionBase&) = delete;

  std::uint64_t id() const noexcept { return id_; }

  /// True when the queue holds something to drain.
  virtual bool ready() const = 0;

  /// Drain one micro-batch through the pipeline — or, with `drain_all`,
  /// keep going until the queue is empty. Caller must hold the claim.
  virtual void drain(bool drain_all) = 0;

  virtual QueueStats queue_stats() const = 0;

  /// Per-session batch service-time histogram (ticks; zeros when
  /// PLS_OBSERVE=0).
  virtual observe::HistogramSnapshot latency() const = 0;

  /// Exclusive drain ticket. The driver claims before submitting a drain
  /// task and the task releases when done, so one session never has two
  /// concurrent drains while thousands of sessions drain in parallel.
  bool try_claim() noexcept {
    bool expected = false;
    return claimed_.compare_exchange_strong(expected, true,
                                            std::memory_order_acquire);
  }
  void release() noexcept { claimed_.store(false, std::memory_order_release); }

 private:
  const std::uint64_t id_;
  std::atomic<bool> claimed_{false};
};

/// One connection: ingest queue -> planned fused chain -> window sink.
/// In = ingest element type, C = collector over the chain's output,
/// Ops = the compile-time stage stack (possibly empty).
template <typename In, typename C, typename... Ops>
class ServiceSession final : public SessionBase {
 public:
  using chain_output = streams::chain_output_t<In, Ops...>;
  using result_type = typename C::result_type;

  static_assert(std::is_same_v<typename C::input_type, chain_output>,
                "collector input type must match the stage chain's output");

  ServiceSession(std::uint64_t id,
                 std::shared_ptr<const std::tuple<Ops...>> ops, C collector,
                 std::size_t window, std::size_t slide, std::size_t max_batch,
                 const streams::ExecutionConfig& cfg)
      : SessionBase(id),
        cfg_(cfg),
        queue_(cfg.queue_capacity, cfg.effective_high_watermark(),
               cfg.effective_low_watermark(), cfg.overload),
        max_batch_(max_batch),
        sink_(std::move(collector), window, slide,
              [this](result_type r) { emit(std::move(r)); }) {
    PLS_CHECK(max_batch_ > 0, "micro-batch size must be > 0");
    auto batch_source = std::make_unique<BatchSpliterator<In>>();
    source_ = batch_source.get();
    std::unique_ptr<streams::Spliterator<In>> sp = std::move(batch_source);
    fused_ = streams::fuse_source<In>(sp);
    PLS_CHECK(fused_ != nullptr, "service source refused fusion");
    if constexpr (sizeof...(Ops) > 0) {
      fused_->append_stage(
          std::make_shared<streams::StaticChainStage<In, Ops...>>(
              std::move(ops)));
    }
    // Planned once; per batch only source_size changes (patched in
    // run_batch so each RunRecord reports its real batch size).
    plan_ = streams::plan_fused_pipeline(
        *fused_, streams::TerminalKind::kCollect, /*collector_sized=*/false,
        /*chunk_collector=*/false, /*parallel=*/false, cfg_,
        streams::PlanOrigin::kService);
  }

  // ---- put side (any thread) -----------------------------------------

  /// Offer one element; see IngestQueue::offer for the overload contract.
  bool offer(In value) { return queue_.offer(std::move(value)); }

  /// Offer a span of elements; returns how many were accepted.
  std::size_t offer_all(const In* values, std::size_t n) {
    std::size_t accepted = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (queue_.offer(values[i])) ++accepted;
    }
    return accepted;
  }

  // ---- service side (driver workers) ---------------------------------

  bool ready() const override { return !queue_.empty(); }

  void drain(bool drain_all) override {
    do {
      const std::size_t n = queue_.drain_batch(batch_, max_batch_);
      if (n == 0) return;
      run_batch(n);
    } while (drain_all);
  }

  // ---- results and telemetry -----------------------------------------

  /// Window results emitted since the last take (encounter order).
  std::vector<result_type> take_results() {
    std::lock_guard<std::mutex> lock(results_mutex_);
    std::vector<result_type> out;
    out.swap(results_);
    return out;
  }

  QueueStats queue_stats() const override { return queue_.stats(); }

  observe::HistogramSnapshot latency() const override {
    return latency_.snapshot();
  }

  std::uint64_t batches_run() const noexcept {
    return batches_.load(std::memory_order_relaxed);
  }

  const streams::ExecutionPlan& plan() const noexcept { return plan_; }
  const streams::ExecutionConfig& stream_config() const noexcept {
    return cfg_;
  }

 private:
  void run_batch(std::size_t n) {
    const std::uint64_t t0 = observe::now_ticks();
    source_->bind(batch_.data(), n);
    fused_->reset();
    streams::ExecutionPlan p = plan_;
    p.source_size = n;
    streams::record_plan(p);
    {
      streams::RunScope scope(p);
      fused_->drive(sink_);
    }
    latency_.record(observe::now_ticks() - t0);
    batches_.fetch_add(1, std::memory_order_relaxed);
  }

  void emit(result_type r) {
    std::lock_guard<std::mutex> lock(results_mutex_);
    results_.push_back(std::move(r));
  }

  const streams::ExecutionConfig cfg_;
  IngestQueue<In> queue_;
  std::vector<In> batch_;  ///< drain buffer, alive across the drive
  const std::size_t max_batch_;

  WindowSink<chain_output, C> sink_;
  BatchSpliterator<In>* source_ = nullptr;  ///< owned by fused_
  std::unique_ptr<streams::FusedPipeline> fused_;
  streams::ExecutionPlan plan_;

  std::mutex results_mutex_;
  std::vector<result_type> results_;
  observe::Histogram latency_;
  std::atomic<std::uint64_t> batches_{0};
};

}  // namespace pls::service
