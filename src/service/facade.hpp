// The pls::service facade — the third entry point of the API surface
// (docs/execution.md has the table):
//
//   batch    pls::run(cfg, fn)                 one terminal, one result
//   static   pls::pipe(stages...).over(v)...   one typed pipeline, one run
//   service  pls::service::pipeline(stages...) a reusable SessionSpec for
//                .window(N).collect(c)         long-lived push sessions
//
// pipeline() mirrors pls::pipe exactly — the same stages:: vocabulary,
// the same shared ops tuple — but instead of binding a finite source it
// produces a SessionSpec: a copyable description (stages, window,
// micro-batch cap, collector, ExecutionConfig) from which any number of
// live sessions can be opened against a driver:
//
//   pls::service::ServiceDriver driver;
//   auto spec = pls::service::pipeline(pls::stages::map(square))
//                   .window(64)
//                   .batch(256)
//                   .configure(session.stream_config())
//                   .collect(pls::collectors::summing<double>());
//   auto conn = spec.open<double>(driver);
//   conn->offer(3.0); ...            // any producer thread
//   driver.pump();                   // schedule ready drains
//   auto sums = conn->take_results();
//
// The service knobs (queue capacity, watermarks, overload policy) ride
// in the same ExecutionConfig every other entry point uses, so
// pls::session::stream_config() round-trips them like any other flag.
#pragma once

#include <cstddef>
#include <memory>
#include <tuple>
#include <type_traits>
#include <utility>

#include "service/driver.hpp"
#include "service/session.hpp"
#include "streams/plan.hpp"
#include "streams/static_fusion.hpp"
#include "support/assert.hpp"

namespace pls::service {

/// Default micro-batch cap when batch() is not called: matches the fused
/// chunk transport, so one drained batch is at most one chunk.
inline constexpr std::size_t kDefaultMaxBatch = streams::kFusionChunk;

/// A complete, reusable session description. Copyable and immutable:
/// open<In>() can be called any number of times, each producing an
/// independent live session registered with the given driver.
template <typename C, typename... Ops>
class SessionSpec {
 public:
  SessionSpec(std::shared_ptr<const std::tuple<Ops...>> ops, C collector,
              std::size_t window, std::size_t slide, std::size_t max_batch,
              streams::ExecutionConfig config)
      : ops_(std::move(ops)),
        collector_(std::move(collector)),
        window_(window),
        slide_(slide),
        max_batch_(max_batch),
        config_(config) {}

  /// Open a live session for ingest type In and register it with the
  /// driver. In must be nameable here (the spec is source-free, like
  /// StagePipe before over()).
  template <typename In>
  std::shared_ptr<ServiceSession<In, C, Ops...>> open(
      ServiceDriver& driver) const {
    auto session = std::make_shared<ServiceSession<In, C, Ops...>>(
        driver.next_session_id(), ops_, collector_, window_, slide_,
        max_batch_, config_);
    driver.add(session);
    return session;
  }

  std::size_t window() const noexcept { return window_; }
  std::size_t slide() const noexcept { return slide_; }
  std::size_t max_batch() const noexcept { return max_batch_; }
  const streams::ExecutionConfig& config() const noexcept { return config_; }

 private:
  std::shared_ptr<const std::tuple<Ops...>> ops_;
  C collector_;
  std::size_t window_;
  std::size_t slide_;
  std::size_t max_batch_;
  streams::ExecutionConfig config_;
};

/// The builder returned by pipeline(): accumulates windowing, batching
/// and execution settings, then collect() seals it into a SessionSpec.
template <typename... Ops>
class PipelineBuilder {
 public:
  explicit PipelineBuilder(std::tuple<Ops...> ops)
      : ops_(std::make_shared<const std::tuple<Ops...>>(std::move(ops))) {}

  /// Tumbling count window: one result per `n` chain outputs.
  PipelineBuilder& window(std::size_t n) {
    PLS_CHECK(n > 0, "window size must be > 0");
    window_ = n;
    slide_ = n;
    return *this;
  }

  /// Sliding count window: a result over the last `n` outputs every
  /// `slide` outputs (slide == n is the tumbling case).
  PipelineBuilder& window(std::size_t n, std::size_t slide) {
    PLS_CHECK(n > 0, "window size must be > 0");
    PLS_CHECK(slide > 0 && slide <= n, "window slide must be in [1, window]");
    window_ = n;
    slide_ = slide;
    return *this;
  }

  /// Cap drained micro-batches at `n` elements (rounded down to a power
  /// of two at drain time). Default: one fusion chunk (1024).
  PipelineBuilder& batch(std::size_t n) {
    PLS_CHECK(n > 0, "micro-batch size must be > 0");
    max_batch_ = n;
    return *this;
  }

  /// Adopt an ExecutionConfig — including the service knobs
  /// (with_queue_capacity / with_watermarks / with_overload_policy) and
  /// everything pls::session::stream_config() carries.
  PipelineBuilder& configure(const streams::ExecutionConfig& cfg) {
    config_ = cfg;
    return *this;
  }

  /// Seal the spec with the windowed terminal's collector.
  template <typename C>
  SessionSpec<std::decay_t<C>, Ops...> collect(C&& collector) const {
    PLS_CHECK(window_ > 0,
              "service pipeline requires window(N) before collect()");
    return SessionSpec<std::decay_t<C>, Ops...>(
        ops_, std::forward<C>(collector), window_, slide_, max_batch_,
        config_);
  }

 private:
  std::shared_ptr<const std::tuple<Ops...>> ops_;
  std::size_t window_ = 0;
  std::size_t slide_ = 0;
  std::size_t max_batch_ = kDefaultMaxBatch;
  streams::ExecutionConfig config_{};
};

/// Build a source-free service pipeline from the shared stage
/// vocabulary: pipeline(stages::map(f), stages::filter(p), ...).
template <typename... Ops>
auto pipeline(Ops&&... ops) {
  static_assert(
      (streams::is_stage_op_v<Ops> && ...),
      "pipeline(...) takes stage ops (stages::map/filter/peek/flat_map)");
  return PipelineBuilder<std::decay_t<Ops>...>(
      std::tuple<std::decay_t<Ops>...>(std::forward<Ops>(ops)...));
}

}  // namespace pls::service
