// IngestQueue<T>: the bounded MPSC mailbox of one ServiceSession —
// the userspace analogue of a STREAMS queue with qband flow control
// (ROADMAP item 3; docs/service.md).
//
// Producers offer() elements from any thread; the session's drain task
// pops them in power-of-two micro-batches sized for the fused chain's
// chunked transport. Between the two sits the watermark pair:
//
//   high  — the queue is *congested* at or above this depth. What happens
//           to offers while congested is the OverloadPolicy:
//             block   producers wait (depth provably never exceeds high)
//             shed    offers are dropped and counted
//             sample  every sample-stride-th offer is kept, the rest
//                     dropped and counted (a deterministic decimation,
//                     not a coin flip — reproducible under test)
//   low   — congestion clears only once a drain brings the depth back to
//           or below this mark. The hysteresis gap is the point: one
//           drained batch under a racing producer cannot flap the queue
//           in and out of congestion per element.
//
// Accounting invariant (checked by the watermark property test):
//   offered == accepted + shed,  always.
//
// One mutex guards everything. The queue is a session mailbox, not a
// work-stealing deque: its operations are O(batch) pops amortised over
// hundreds of elements, and the fan-out across sessions — not lock-free
// cleverness within one — is where the service layer's parallelism lives.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "streams/plan.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace pls::service {

using streams::OverloadPolicy;

/// Point-in-time accounting of one ingest queue.
struct QueueStats {
  std::uint64_t offered = 0;    ///< total offer() calls
  std::uint64_t accepted = 0;   ///< offers that entered the queue
  std::uint64_t shed = 0;       ///< offers dropped (offered-accepted)
  std::uint64_t drained = 0;    ///< elements handed to drain_batch callers
  std::uint64_t batches = 0;    ///< drain_batch calls that returned > 0
  std::size_t depth = 0;        ///< current depth
  std::size_t depth_hwm = 0;    ///< deepest the queue has ever been
  bool congested = false;       ///< currently between high and low marks
};

template <typename T>
class IngestQueue {
 public:
  /// Every k-th congested offer survives under OverloadPolicy::kSample.
  static constexpr std::uint64_t kSampleStride = 8;

  IngestQueue(std::size_t capacity, std::size_t high_watermark,
              std::size_t low_watermark, OverloadPolicy policy)
      : capacity_(capacity),
        high_(high_watermark),
        low_(low_watermark),
        policy_(policy) {
    PLS_CHECK(capacity_ > 0, "ingest queue requires capacity > 0");
    PLS_CHECK(high_ > 0 && high_ <= capacity_,
              "high watermark must be in (0, capacity]");
    PLS_CHECK(low_ <= high_, "low watermark must not exceed the high one");
  }

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Offer one element. Returns true when it entered the queue, false
  /// when the overload policy shed it. Under kBlock this never returns
  /// false — it waits for the drain side instead.
  bool offer(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    ++stats_.offered;
    if (policy_ == OverloadPolicy::kBlock) {
      not_full_.wait(lock, [&] { return !congested_; });
    } else if (congested_ || q_.size() >= capacity_) {
      const bool keep = policy_ == OverloadPolicy::kSample &&
                        q_.size() < capacity_ &&
                        (sample_seq_++ % kSampleStride) == 0;
      if (!keep) {
        ++stats_.shed;
        return false;
      }
    }
    q_.push_back(std::move(value));
    ++stats_.accepted;
    if (q_.size() >= high_) congested_ = true;
    if (q_.size() > stats_.depth_hwm) stats_.depth_hwm = q_.size();
    return true;
  }

  /// Pop the next micro-batch into `out` (cleared first) and return its
  /// size: the largest power of two <= min(depth, max_batch), so batches
  /// align with the fused chain's chunk transport and any non-empty
  /// queue makes progress (floor of 1 element). Clearing congestion is
  /// the drain side's job: once the depth falls to the low mark, blocked
  /// producers are woken and shedding stops.
  std::size_t drain_batch(std::vector<T>& out, std::size_t max_batch) {
    PLS_CHECK(max_batch > 0, "drain_batch requires max_batch > 0");
    std::unique_lock<std::mutex> lock(mutex_);
    if (q_.empty()) return 0;
    std::size_t n = q_.size() < max_batch ? q_.size() : max_batch;
    n = std::size_t{1} << floor_log2(n);
    out.clear();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    stats_.drained += n;
    ++stats_.batches;
    const bool cleared = congested_ && q_.size() <= low_;
    if (cleared) congested_ = false;
    lock.unlock();
    if (cleared) not_full_.notify_all();
    return n;
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return q_.size();
  }

  bool empty() const { return depth() == 0; }

  QueueStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    QueueStats s = stats_;
    s.depth = q_.size();
    s.congested = congested_;
    return s;
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t high_watermark() const noexcept { return high_; }
  std::size_t low_watermark() const noexcept { return low_; }
  OverloadPolicy policy() const noexcept { return policy_; }

 private:
  const std::size_t capacity_;
  const std::size_t high_;
  const std::size_t low_;
  const OverloadPolicy policy_;

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::deque<T> q_;
  bool congested_ = false;
  std::uint64_t sample_seq_ = 0;
  QueueStats stats_;
};

}  // namespace pls::service
