// Task representations for the fork-join pool.
//
// Tasks are intrusive: the pool's deques store RawTask pointers and never
// own them. The two concrete kinds are
//   - ChildTask<F>: stack-allocated by invoke_two/parallel_invoke; the
//     spawning frame outlives the task by construction (it joins before
//     returning), so no heap allocation happens on the fork path
//     (Core Guidelines Per.14/Per.15).
//   - HeapTask<F>: heap-allocated for external submissions via
//     ForkJoinPool::run, completion signalled through a promise.
//   - DetachedTask<F>: heap-allocated for fire-and-forget submissions via
//     ForkJoinPool::submit; no promise — completion is the caller's
//     protocol (the service driver counts in-flight batches itself).
#pragma once

#include <atomic>
#include <exception>
#include <future>
#include <type_traits>
#include <utility>

namespace pls::forkjoin {

/// Abstract unit of work executed by pool workers.
class RawTask {
 public:
  virtual ~RawTask() = default;

  /// Run the task body. Must be called exactly once.
  virtual void execute() = 0;

  /// True once execute() finished (including by exception).
  bool is_done() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

 protected:
  void mark_done() noexcept { done_.store(true, std::memory_order_release); }

 private:
  std::atomic<bool> done_{false};
};

/// A forked child whose lifetime is the spawning stack frame.
/// Captures any exception for rethrow at the join point.
template <typename F>
class ChildTask final : public RawTask {
 public:
  explicit ChildTask(F& body) : body_(body) {}

  void execute() override {
    try {
      body_();
    } catch (...) {
      error_ = std::current_exception();
    }
    mark_done();
  }

  /// Rethrow the captured exception, if any. Call after is_done().
  void rethrow_if_failed() {
    if (error_) std::rethrow_exception(error_);
  }

 private:
  F& body_;  // lives in the spawning frame
  std::exception_ptr error_;
};

/// Heap task carrying its result through a promise; used by external
/// submission so the caller can block on a future while workers run.
template <typename F>
class HeapTask final : public RawTask {
 public:
  using result_type = std::invoke_result_t<F&>;

  explicit HeapTask(F body) : body_(std::move(body)) {}

  void execute() override {
    try {
      if constexpr (std::is_void_v<result_type>) {
        body_();
        promise_.set_value();
      } else {
        promise_.set_value(body_());
      }
    } catch (...) {
      promise_.set_exception(std::current_exception());
    }
    mark_done();
    // The submitter owns the future; the task deletes itself once done.
    delete this;
  }

  std::future<result_type> get_future() { return promise_.get_future(); }

 private:
  F body_;
  std::promise<result_type> promise_;
};

/// Fire-and-forget heap task: runs the body, swallows nothing (the body
/// must be noexcept in spirit — an escaping exception terminates, as it
/// would from a detached thread), and deletes itself. Used by
/// ForkJoinPool::submit for externally injected work whose completion is
/// tracked out-of-band by the submitter.
template <typename F>
class DetachedTask final : public RawTask {
 public:
  explicit DetachedTask(F body) : body_(std::move(body)) {}

  void execute() override {
    body_();
    mark_done();
    delete this;
  }

 private:
  F body_;
};

}  // namespace pls::forkjoin
