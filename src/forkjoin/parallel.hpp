// High-level parallel algorithms on top of ForkJoinPool.
//
// These are the generic D&C drivers used by the streams evaluator and the
// PowerList executors: variadic parallel_invoke, blocked parallel_for, and
// parallel_reduce. Grain sizes are explicit — the caller states the smallest
// chunk worth forking for, which the PowerList ablation bench sweeps.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include "forkjoin/pool.hpp"
#include "support/assert.hpp"

namespace pls::forkjoin {

namespace detail {

template <typename F>
void invoke_all(ForkJoinPool& pool, F&& f) {
  (void)pool;
  f();
}

template <typename F0, typename F1, typename... Rest>
void invoke_all(ForkJoinPool& pool, F0&& f0, F1&& f1, Rest&&... rest) {
  // Binary split: first half runs inline, remainder is forked. With the
  // standard stack discipline the fork tree has logarithmic depth.
  pool.invoke_two(
      [&] { invoke_all(pool, std::forward<F0>(f0)); },
      [&] { invoke_all(pool, std::forward<F1>(f1),
                       std::forward<Rest>(rest)...); });
}

}  // namespace detail

/// Run all closures, potentially in parallel; returns when all finished.
template <typename... Fs>
void parallel_invoke(ForkJoinPool& pool, Fs&&... fs) {
  pool.run([&] { detail::invoke_all(pool, std::forward<Fs>(fs)...); });
}

/// Apply `body(i)` for every i in [begin, end), splitting recursively until
/// ranges are at most `grain` long.
template <typename Index, typename Body>
void parallel_for(ForkJoinPool& pool, Index begin, Index end, Index grain,
                  const Body& body) {
  PLS_CHECK(grain >= 1, "parallel_for grain must be >= 1");
  if (begin >= end) return;
  pool.run([&] { detail_for(pool, begin, end, grain, body); });
}

template <typename Index, typename Body>
void detail_for(ForkJoinPool& pool, Index begin, Index end, Index grain,
                const Body& body) {
  while (end - begin > grain) {
    const Index mid = begin + (end - begin) / 2;
    Index right_begin = mid, right_end = end;
    pool.invoke_two(
        [&] { detail_for(pool, begin, mid, grain, body); },
        [&] { detail_for(pool, right_begin, right_end, grain, body); });
    return;
  }
  for (Index i = begin; i < end; ++i) body(i);
}

/// Parallel reduction: transform each index with `leaf` over grain-sized
/// blocks sequentially, combine partial results with `combine`.
/// `combine` must be associative; `identity` its neutral element.
template <typename Index, typename T, typename LeafFn, typename CombineFn>
T parallel_reduce(ForkJoinPool& pool, Index begin, Index end, Index grain,
                  T identity, const LeafFn& leaf, const CombineFn& combine) {
  PLS_CHECK(grain >= 1, "parallel_reduce grain must be >= 1");
  if (begin >= end) return identity;
  return pool.run([&] {
    return detail_reduce(pool, begin, end, grain, identity, leaf, combine);
  });
}

template <typename Index, typename T, typename LeafFn, typename CombineFn>
T detail_reduce(ForkJoinPool& pool, Index begin, Index end, Index grain,
                const T& identity, const LeafFn& leaf,
                const CombineFn& combine) {
  if (end - begin <= grain) {
    // leaf(begin, end) reduces a block sequentially.
    return leaf(begin, end);
  }
  const Index mid = begin + (end - begin) / 2;
  T left_result = identity;
  T right_result = identity;
  pool.invoke_two(
      [&] {
        left_result = detail_reduce(pool, begin, mid, grain, identity, leaf,
                                    combine);
      },
      [&] {
        right_result = detail_reduce(pool, mid, end, grain, identity, leaf,
                                     combine);
      });
  return combine(std::move(left_result), std::move(right_result));
}

}  // namespace pls::forkjoin
