// ForkJoinPool: a work-stealing thread pool specialised for recursive
// divide-and-conquer tasks — the C++ analogue of java.util.concurrent's
// ForkJoinPool, which both Java parallel streams and the JPLF framework use
// as their execution substrate.
//
// Execution model
//   - N worker threads, each owning a Chase-Lev deque.
//   - invoke_two(left, right) is the fork-join primitive: the right closure
//     is pushed on the calling worker's deque (fork), the left closure runs
//     inline, and the join either pops the right task back (it was not
//     stolen: zero synchronisation beyond the deque protocol) or helps by
//     executing other tasks until the thief finishes it.
//   - External threads enter through run(), which injects a heap task and
//     blocks on a future; all recursive parallelism then happens on workers.
//
// Following CP.4 the API is expressed in tasks (closures), never threads;
// workers are joined in the destructor (CP.25/CP.26: no detached threads).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "forkjoin/deque.hpp"
#include "forkjoin/task.hpp"
#include "observe/counters.hpp"
#include "observe/histogram.hpp"
#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace pls::forkjoin {

/// Deterministic-schedule hook (testing): while installed on a pool,
/// invoke_two bypasses the deques and runs both closures serially on the
/// calling thread, in the order the hook chooses per fork. A seeded hook
/// therefore replays one exact interleaving per seed, and a sweep of seeds
/// explores distinct steal/run orders — the schedule-fuzzing substrate of
/// src/proptest/deterministic_pool.hpp. Install with set_schedule_hook()
/// while no tasks are in flight; the hook must outlive the installation.
class ForkScheduleHook {
 public:
  virtual ~ForkScheduleHook() = default;

  /// Decide the next fork's execution order. Returning true runs the
  /// forked (right) closure before the left one — the serial analogue of
  /// the child being stolen and completed before the parent continues;
  /// false is the undisturbed pop-own-task order.
  virtual bool run_forked_first() = 0;
};

class ForkJoinPool {
 public:
  /// Create a pool with the given number of worker threads (>= 1).
  explicit ForkJoinPool(unsigned parallelism = default_parallelism());

  /// Joins all workers; outstanding external submissions complete first
  /// only if the caller waited on their futures (normal usage).
  ~ForkJoinPool();

  ForkJoinPool(const ForkJoinPool&) = delete;
  ForkJoinPool& operator=(const ForkJoinPool&) = delete;

  unsigned parallelism() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Parallelism used by default-constructed pools: the PLS_PARALLELISM
  /// environment variable if set, otherwise hardware_concurrency (min 1).
  static unsigned default_parallelism();

  /// Process-wide shared pool (analogue of ForkJoinPool.commonPool()).
  static ForkJoinPool& common();

  /// True if the calling thread is a worker of *some* ForkJoinPool.
  static bool in_worker() noexcept { return tls_worker_ != nullptr; }

  /// True if the calling thread is a worker of *this* pool.
  bool in_this_pool() const noexcept { return tls_pool_ == this; }

  /// Execute `f` on the pool and return its result. If called from a worker
  /// of this pool, runs inline (it is already "on the pool"); otherwise the
  /// calling thread blocks until a worker has finished the task.
  template <typename F>
  auto run(F&& f) -> std::invoke_result_t<F&> {
    if (in_this_pool()) {
      return f();
    }
    using Fn = std::decay_t<F>;
    auto* task = new HeapTask<Fn>(std::forward<F>(f));  // deletes itself
    auto future = task->get_future();
    external_push(task);
    return future.get();
  }

  /// Fire-and-forget external submission: inject `f` and return
  /// immediately. The caller owns completion tracking (the service driver
  /// counts in-flight batches and quiesces before pool destruction); an
  /// exception escaping `f` terminates, as from a detached thread. Unlike
  /// run(), never runs inline — even from a worker of this pool the task
  /// goes through the injection queue, so a drain task may safely submit
  /// follow-up work without unbounded recursion.
  template <typename F>
  void submit(F&& f) {
    using Fn = std::decay_t<F>;
    external_push(new DetachedTask<Fn>(std::forward<F>(f)));  // deletes itself
  }

  /// The fork-join primitive: execute both closures, potentially in
  /// parallel. Must be joined before the enclosing frame returns (enforced
  /// structurally: this function only returns once both closures finished).
  /// Exceptions from either closure propagate to the caller; if both throw,
  /// the left one wins (the right one's is dropped, matching std::async
  /// composition semantics closely enough for this library).
  template <typename FL, typename FR>
  void invoke_two(FL&& left, FR&& right) {
    if (ForkScheduleHook* hook = schedule_hook_) {
      invoke_two_serialized(*hook, left, right);
      return;
    }
    Worker* self = (tls_pool_ == this) ? tls_worker_ : nullptr;
    if (self == nullptr) {
      // Not on this pool: degrade gracefully to sequential execution.
      left();
      right();
      return;
    }
    using RightFn = std::remove_reference_t<FR>;
    ChildTask<RightFn> child(right);
    self->deque.push(&child);
    self->own_counters()->on_fork();
    observe::instant(observe::EventKind::kFork);
    wake_one_if_sleeping();
    // The child lives on this frame: even if `left` throws we must join it
    // before unwinding, or a thief could execute a destroyed task.
    std::exception_ptr left_error;
    try {
      left();
    } catch (...) {
      left_error = std::current_exception();
    }
    {
      observe::Span join_span(observe::EventKind::kJoin);
      join(*self, child);
    }
    if (left_error) std::rethrow_exception(left_error);
    child.rethrow_if_failed();
  }

  /// Install (or clear, with nullptr) a deterministic-schedule hook. The
  /// caller must ensure no tasks are in flight when the hook changes and
  /// that the hook outlives its installation; a plain (non-atomic) member
  /// suffices because external_push's queue mutex orders the write against
  /// the worker that dequeues and executes the submitted task.
  void set_schedule_hook(ForkScheduleHook* hook) noexcept {
    schedule_hook_ = hook;
  }

  ForkScheduleHook* schedule_hook() const noexcept { return schedule_hook_; }

  /// Total number of successful steals since construction (diagnostic).
  std::uint64_t steal_count() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Full steal sweeps that found no task (failed attempts). Together with
  /// steal_count() this separates productive migrations from idle probing —
  /// the distinction the single pre-observe counter conflated.
  std::uint64_t steal_failure_count() const noexcept {
    return steal_failures_.load(std::memory_order_relaxed);
  }

  /// Workers currently parked in the timed sleep wait (sampled,
  /// approximate — a worker may be waking as you read). The continuous-
  /// telemetry layer derives pool utilization from this.
  int sleeping_workers() const noexcept {
    const int s = sleepers_.load(std::memory_order_relaxed);
    return s > 0 ? s : 0;
  }

  /// Approximate per-worker deque depths, indexed by worker ordinal. The
  /// Chase-Lev size() reads both bounds with acquire loads, so sampling
  /// from a non-worker thread is safe (the value may be momentarily
  /// stale, which is fine for backlog gauges).
  std::vector<std::size_t> queue_depths() const {
    std::vector<std::size_t> out;
    out.reserve(workers_.size());
    for (const auto& w : workers_) {
      out.push_back(static_cast<std::size_t>(w->deque.size()));
    }
    return out;
  }

  /// Aggregated observability counters over this pool's workers (zeros
  /// when PLS_OBSERVE=0; see src/observe/counters.hpp).
  observe::CounterTotals counter_totals() const {
    observe::CounterTotals t;
    for (const auto& w : workers_) {
      const auto* cb = w->counters.load(std::memory_order_acquire);
      if (cb != nullptr) t += cb->snapshot();
    }
    return t;
  }

  /// Labelled point-in-time capture of this pool's counters (totals plus
  /// per-worker rows), diffable with observe::CounterSnapshot::operator-:
  ///   auto before = pool.counter_snapshot();
  ///   run();
  ///   auto delta = pool.counter_snapshot() - before;
  observe::CounterSnapshot counter_snapshot() const {
    observe::CounterSnapshot s;
    s.total = counter_totals();
    const auto per = per_worker_counters();
    s.per_worker.reserve(per.size());
    for (std::size_t i = 0; i < per.size(); ++i) {
      s.per_worker.push_back(
          {"fj-worker-" + std::to_string(i), per[i]});
    }
    return s;
  }

  /// Per-worker counter snapshots, indexed by worker ordinal.
  std::vector<observe::CounterTotals> per_worker_counters() const {
    std::vector<observe::CounterTotals> out;
    out.reserve(workers_.size());
    for (const auto& w : workers_) {
      const auto* cb = w->counters.load(std::memory_order_acquire);
      out.push_back(cb != nullptr ? cb->snapshot()
                                  : observe::CounterTotals{});
    }
    return out;
  }

 private:
  struct Worker {
    explicit Worker(unsigned index_, std::uint64_t seed)
        : index(index_), rng(seed) {}
    unsigned index;
    WorkStealingDeque deque;
    Xoshiro256 rng;
    /// This worker's observability block (published at thread start,
    /// before any task can run on the worker; stable for the pool's
    /// lifetime). Atomic because counter_totals() reads it from other
    /// threads while the worker may still be starting up. The owning
    /// worker reads its own store, so relaxed suffices on counting paths.
    std::atomic<observe::CounterBlock*> counters{nullptr};

    observe::CounterBlock* own_counters() const noexcept {
      return counters.load(std::memory_order_relaxed);
    }
  };

  /// Serialized fork under a schedule hook: both closures run on the
  /// calling thread, in hook-chosen order; no deque traffic, so a seed's
  /// decision sequence fully determines the interleaving. Exception
  /// precedence matches the concurrent path: the left closure's error
  /// wins when both throw, regardless of execution order.
  template <typename FL, typename FR>
  void invoke_two_serialized(ForkScheduleHook& hook, FL& left, FR& right) {
    observe::instant(observe::EventKind::kFork);
    std::exception_ptr left_error;
    std::exception_ptr right_error;
    auto guarded_left = [&] {
      try {
        left();
      } catch (...) {
        left_error = std::current_exception();
      }
    };
    auto guarded_right = [&] {
      try {
        right();
      } catch (...) {
        right_error = std::current_exception();
      }
    };
    if (hook.run_forked_first()) {
      guarded_right();
      guarded_left();
    } else {
      guarded_left();
      guarded_right();
    }
    if (left_error) std::rethrow_exception(left_error);
    if (right_error) std::rethrow_exception(right_error);
  }

  void worker_loop(unsigned index);

  /// Append this pool's gauges/counters (workers, sleepers, backlog,
  /// utilization, starvation ratio, steal totals) to a metrics sample;
  /// `ordinal` labels the rows (pool="N"). Called by the source this pool
  /// registers with the MetricsRegistry for its lifetime.
  void append_pool_metrics(observe::MetricsSample& sample,
                           unsigned ordinal) const;

  /// Find runnable work: own deque, then injection queue, then steal sweep.
  RawTask* find_task(Worker& self);

  /// Steal one task from some other worker (one full sweep); nullptr if none.
  RawTask* try_steal(Worker& self);

  RawTask* poll_injection();
  void external_push(RawTask* task);
  void wake_one_if_sleeping();

  /// Wait for `target` to complete, executing other tasks meanwhile.
  template <typename Child>
  void join(Worker& self, Child& target) {
    // Fast path: the child is still on top of our own deque.
    if (!target.is_done()) {
      if constexpr (observe::kEnabled) {
        observe::local_histograms().record(observe::Metric::kQueueDepth,
                                           self.deque.size());
      }
      RawTask* popped = self.deque.pop();
      if (popped == &target) {
        // Counted before execute(): completion is published inside
        // execute(), and waiters must not see it before the counter moved.
        self.own_counters()->on_task_executed();
        observe::LatencyTimer run_timer(observe::Metric::kTaskRun);
        popped->execute();
        return;
      }
      if (popped != nullptr) {
        // Defensive: structured fork-join keeps the deque balanced, but if
        // user code escaped the discipline, still make progress.
        self.own_counters()->on_task_executed();
        observe::LatencyTimer run_timer(observe::Metric::kTaskRun);
        popped->execute();
      }
    }
    // Slow path: the child was stolen; help run the rest of the system.
    unsigned idle_spins = 0;
    while (!target.is_done()) {
      RawTask* t = find_task(self);
      if (t != nullptr) {
        self.own_counters()->on_task_executed();
        observe::Span task_span(observe::EventKind::kTask);
        observe::LatencyTimer run_timer(observe::Metric::kTaskRun);
        t->execute();
        idle_spins = 0;
      } else if (++idle_spins > 64) {
        std::this_thread::yield();
      }
    }
  }

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex inject_mutex_;
  std::deque<RawTask*> injected_;

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::uint64_t wake_epoch_ = 0;          // guarded by sleep_mutex_
  std::atomic<int> sleepers_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> steal_failures_{0};
  ForkScheduleHook* schedule_hook_ = nullptr;
  std::uint64_t metrics_source_ = 0;  ///< MetricsRegistry token (0 = none)

  static thread_local Worker* tls_worker_;
  static thread_local ForkJoinPool* tls_pool_;
};

}  // namespace pls::forkjoin
