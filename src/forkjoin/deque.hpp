// Chase-Lev work-stealing deque.
//
// One owner thread pushes and pops at the bottom (LIFO, preserving the
// depth-first execution order that keeps divide-and-conquer working sets
// cache-resident); thief threads steal at the top (FIFO, taking the largest
// remaining subtrees). Memory ordering follows Le, Pop, Cohen, Nardelli,
// "Correct and Efficient Work-Stealing for Weak Memory Models" (PPoPP'13).
//
// The ring buffer grows on demand. Retired rings are kept alive until the
// deque is destroyed because a concurrent thief may still be reading a slot
// of an old ring; this trades a small bounded amount of memory for freedom
// from ABA/use-after-free without hazard pointers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/align.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

// ThreadSanitizer does not model std::atomic_thread_fence, so the
// fence-based slot publication below (push: release fence + relaxed store;
// steal: seq_cst fence + relaxed load) is invisible to it and every stolen
// task would be reported as racing with its own construction. Under TSan
// the slot accesses are strengthened to release/acquire — strictly
// stronger than the PPoPP'13 orderings, so it cannot mask a real race.
#if defined(__SANITIZE_THREAD__)
#define PLS_DEQUE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PLS_DEQUE_TSAN 1
#endif
#endif
#ifndef PLS_DEQUE_TSAN
#define PLS_DEQUE_TSAN 0
#endif

namespace pls::forkjoin {

class RawTask;

class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(unsigned initial_capacity_log2 = 8)
      : ring_(new Ring(initial_capacity_log2)) {
    top_.value.store(0, std::memory_order_relaxed);
    bottom_.value.store(0, std::memory_order_relaxed);
    active_ring_.store(ring_.get(), std::memory_order_relaxed);
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only: push a task at the bottom.
  void push(RawTask* task) {
    const std::int64_t b = bottom_.value.load(std::memory_order_relaxed);
    const std::int64_t t = top_.value.load(std::memory_order_acquire);
    Ring* ring = active_ring_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(ring->capacity()) - 1) {
      ring = grow(ring, t, b);
    }
    ring->put(b, task);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.value.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only: pop the most recently pushed task, or nullptr.
  RawTask* pop() {
    const std::int64_t b = bottom_.value.load(std::memory_order_relaxed) - 1;
    Ring* ring = active_ring_.load(std::memory_order_relaxed);
    bottom_.value.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.value.load(std::memory_order_relaxed);
    RawTask* task = nullptr;
    if (t <= b) {
      task = ring->get(b);
      if (t == b) {
        // Last element: race against thieves for it.
        if (!top_.value.compare_exchange_strong(t, t + 1,
                                                std::memory_order_seq_cst,
                                                std::memory_order_relaxed)) {
          task = nullptr;  // a thief won
        }
        bottom_.value.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      // Deque was already empty.
      bottom_.value.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  /// Any thread: steal the oldest task, or nullptr (empty or lost race).
  RawTask* steal() {
    std::int64_t t = top_.value.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.value.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    Ring* ring = active_ring_.load(std::memory_order_consume);
    RawTask* task = ring->get(t);
    if (!top_.value.compare_exchange_strong(t, t + 1,
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
      return nullptr;  // lost the race; caller retries elsewhere
    }
    return task;
  }

  /// Approximate emptiness; exact only for the owner when no thieves run.
  bool empty() const {
    const std::int64_t b = bottom_.value.load(std::memory_order_acquire);
    const std::int64_t t = top_.value.load(std::memory_order_acquire);
    return b <= t;
  }

  /// Approximate size (may be stale under concurrency).
  std::size_t size() const {
    const std::int64_t b = bottom_.value.load(std::memory_order_acquire);
    const std::int64_t t = top_.value.load(std::memory_order_acquire);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  class Ring {
   public:
    explicit Ring(unsigned capacity_log2)
        : mask_((std::size_t{1} << capacity_log2) - 1),
          slots_(new std::atomic<RawTask*>[std::size_t{1} << capacity_log2]) {}

    std::size_t capacity() const { return mask_ + 1; }

    static constexpr std::memory_order kPutOrder =
        PLS_DEQUE_TSAN ? std::memory_order_release
                       : std::memory_order_relaxed;
    static constexpr std::memory_order kGetOrder =
        PLS_DEQUE_TSAN ? std::memory_order_acquire
                       : std::memory_order_relaxed;

    void put(std::int64_t index, RawTask* task) {
      slots_[static_cast<std::size_t>(index) & mask_].store(task, kPutOrder);
    }

    RawTask* get(std::int64_t index) const {
      return slots_[static_cast<std::size_t>(index) & mask_].load(kGetOrder);
    }

   private:
    std::size_t mask_;
    std::unique_ptr<std::atomic<RawTask*>[]> slots_;
  };

  Ring* grow(Ring* old, std::int64_t top, std::int64_t bottom) {
    auto bigger = std::make_unique<Ring>(
        pls::floor_log2(old->capacity()) + 1);
    for (std::int64_t i = top; i < bottom; ++i) {
      bigger->put(i, old->get(i));
    }
    Ring* raw = bigger.get();
    retired_.push_back(std::move(ring_));
    ring_ = std::move(bigger);
    active_ring_.store(raw, std::memory_order_release);
    return raw;
  }

  CacheAligned<std::atomic<std::int64_t>> top_;
  CacheAligned<std::atomic<std::int64_t>> bottom_;
  std::atomic<Ring*> active_ring_;
  std::unique_ptr<Ring> ring_;
  std::vector<std::unique_ptr<Ring>> retired_;  // owner-mutated only (grow)
};

}  // namespace pls::forkjoin
