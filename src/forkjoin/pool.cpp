#include "forkjoin/pool.hpp"

#include <chrono>
#include <cstdlib>
#include <string>

namespace pls::forkjoin {

thread_local ForkJoinPool::Worker* ForkJoinPool::tls_worker_ = nullptr;
thread_local ForkJoinPool* ForkJoinPool::tls_pool_ = nullptr;

ForkJoinPool::ForkJoinPool(unsigned parallelism) {
  PLS_CHECK(parallelism >= 1, "ForkJoinPool needs at least one worker");
  workers_.reserve(parallelism);
  for (unsigned i = 0; i < parallelism; ++i) {
    // Fixed seed base: worker behaviour (victim selection) is deterministic
    // across runs for a given parallelism.
    workers_.push_back(std::make_unique<Worker>(i, 0x9E3779B9u + i));
  }
  threads_.reserve(parallelism);
  for (unsigned i = 0; i < parallelism; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
  if constexpr (observe::kEnabled) {
    // Expose live pool state to the continuous-telemetry sampler for the
    // pool's lifetime. The ordinal distinguishes pools in the labelled
    // namespace (the common pool is usually 0).
    static std::atomic<unsigned> next_pool_ordinal{0};
    const unsigned ordinal =
        next_pool_ordinal.fetch_add(1, std::memory_order_relaxed);
    metrics_source_ = observe::MetricsRegistry::global().add_source(
        [this, ordinal](observe::MetricsSample& sample) {
          append_pool_metrics(sample, ordinal);
        });
  }
}

ForkJoinPool::~ForkJoinPool() {
  if constexpr (observe::kEnabled) {
    // Deregister before shutting workers down: remove_source blocks until
    // no in-flight collect() can still sample this pool.
    if (metrics_source_ != 0) {
      observe::MetricsRegistry::global().remove_source(metrics_source_);
    }
  }
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    ++wake_epoch_;
  }
  sleep_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

unsigned ForkJoinPool::default_parallelism() {
  if (const char* env = std::getenv("PLS_PARALLELISM")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1u;
}

ForkJoinPool& ForkJoinPool::common() {
  static ForkJoinPool pool(default_parallelism());
  return pool;
}

void ForkJoinPool::worker_loop(unsigned index) {
  Worker& self = *workers_[index];
  // Claim the observability block before publishing the worker via TLS, so
  // every counting site below (and in invoke_two/join) sees it non-null.
  self.counters.store(&observe::local_counters(), std::memory_order_release);
  observe::CounterRegistry::global().set_local_label(
      "fj-worker-" + std::to_string(index));
  tls_worker_ = &self;
  tls_pool_ = this;
  while (true) {
    RawTask* task = find_task(self);
    if (task != nullptr) {
      // Counted at dispatch: execute() publishes completion (promise /
      // done flag), so counting afterwards would let a waiter observe the
      // result before the counter moved.
      self.own_counters()->on_task_executed();
      {
        observe::Span task_span(observe::EventKind::kTask);
        observe::LatencyTimer run_timer(observe::Metric::kTaskRun);
        task->execute();
      }
      continue;
    }
    if (shutdown_.load(std::memory_order_acquire)) break;
    // Nothing runnable: sleep until new work is published. The epoch is
    // sampled before the re-check so a task pushed in between forces an
    // immediate retry instead of a missed wakeup; the timed wait is a
    // belt-and-braces bound on any residual race.
    std::uint64_t observed;
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
      observed = wake_epoch_;
    }
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    RawTask* late = find_task(self);
    if (late != nullptr) {
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      self.own_counters()->on_task_executed();
      {
        observe::Span task_span(observe::EventKind::kTask);
        observe::LatencyTimer run_timer(observe::Metric::kTaskRun);
        late->execute();
      }
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(sleep_mutex_);
      sleep_cv_.wait_for(lock, std::chrono::milliseconds(10), [&] {
        return wake_epoch_ != observed ||
               shutdown_.load(std::memory_order_acquire);
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
  tls_worker_ = nullptr;
  tls_pool_ = nullptr;
}

void ForkJoinPool::append_pool_metrics(observe::MetricsSample& sample,
                                       unsigned ordinal) const {
  const double workers = static_cast<double>(workers_.size());
  const double sleeping = static_cast<double>(sleeping_workers());
  double backlog = 0.0;
  for (const std::size_t depth : queue_depths()) {
    backlog += static_cast<double>(depth);
  }
  const double steals =
      static_cast<double>(steals_.load(std::memory_order_relaxed));
  const double failures =
      static_cast<double>(steal_failures_.load(std::memory_order_relaxed));
  const double sweeps = steals + failures;
  const std::string label = std::to_string(ordinal);
  auto gauge = [&](const char* name, double value, const char* help) {
    sample.rows.push_back(observe::MetricRow{
        name, observe::MetricKind::kGauge, value, "pool", label, help});
  };
  auto counter = [&](const char* name, double value, const char* help) {
    sample.rows.push_back(observe::MetricRow{
        name, observe::MetricKind::kCounter, value, "pool", label, help});
  };
  gauge("pls_pool_workers", workers, "Worker threads owned by the pool");
  gauge("pls_pool_sleeping_workers", sleeping,
        "Workers parked in the timed sleep wait");
  gauge("pls_pool_queue_backlog", backlog,
        "Tasks queued across the pool's deques");
  gauge("pls_pool_utilization",
        workers > 0.0 ? (workers - sleeping) / workers : 0.0,
        "Fraction of workers not sleeping");
  gauge("pls_pool_starvation_ratio", sweeps > 0.0 ? failures / sweeps : 0.0,
        "Failed steal sweeps over all steal sweeps");
  counter("pls_pool_steals_total", steals,
          "Successful task migrations between workers");
  counter("pls_pool_steal_failures_total", failures,
          "Full steal sweeps that found no task");
}

RawTask* ForkJoinPool::find_task(Worker& self) {
  if constexpr (observe::kEnabled) {
    observe::local_histograms().record(observe::Metric::kQueueDepth,
                                       self.deque.size());
  }
  if (RawTask* own = self.deque.pop()) return own;
  if (RawTask* injected = poll_injection()) return injected;
  return try_steal(self);
}

RawTask* ForkJoinPool::try_steal(Worker& self) {
  const std::size_t n = workers_.size();
  if (n <= 1) return nullptr;
  // Start the sweep at a random victim to spread contention, then scan all
  // other workers once. A successful sweep's duration — victim probing
  // included — is the steal latency recorded below.
  const std::uint64_t sweep_start =
      observe::kEnabled ? observe::now_ticks() : 0;
  const std::size_t offset = self.rng.next_below(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (offset + k) % n;
    if (victim == self.index) continue;
    if (RawTask* stolen = workers_[victim]->deque.steal()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      self.own_counters()->on_steal(true);
      if constexpr (observe::kEnabled) {
        observe::local_histograms().record(
            observe::Metric::kStealLatency,
            observe::now_ticks() - sweep_start);
      }
      observe::instant(observe::EventKind::kSteal, victim);
      return stolen;
    }
  }
  // One failed attempt = one full sweep over all victims. Hot while a
  // worker is starved, so both the pool tally and the per-worker block use
  // relaxed, thread-local increments.
  steal_failures_.fetch_add(1, std::memory_order_relaxed);
  self.own_counters()->on_steal(false);
  return nullptr;
}

RawTask* ForkJoinPool::poll_injection() {
  std::lock_guard<std::mutex> lock(inject_mutex_);
  if (injected_.empty()) return nullptr;
  RawTask* task = injected_.front();
  injected_.pop_front();
  return task;
}

void ForkJoinPool::external_push(RawTask* task) {
  {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    injected_.push_back(task);
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    ++wake_epoch_;
  }
  sleep_cv_.notify_all();
}

void ForkJoinPool::wake_one_if_sleeping() {
  // Full fence: the preceding deque push must be globally visible before
  // the sleeper check (x86 reorders store -> later load; without this a
  // worker could go to sleep "around" a fresh task, costing one timed-
  // wait period of latency).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
      ++wake_epoch_;
    }
    sleep_cv_.notify_one();
  }
}

}  // namespace pls::forkjoin
