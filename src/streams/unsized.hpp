// Unsized and generative stream sources.
//
// Java streams built from iterators of unknown size still parallelise:
// the spliterator carves off *batches* into arrays (growing arithmetically
// by 1024, as java.util.Spliterators.AbstractSpliterator does) so thieves
// get contiguous work while the tail stays lazy. UnsizedSpliterator
// reproduces that design over a pull function; Stream-side factories
// (iterate) build on it.
#pragma once

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "streams/spliterator.hpp"
#include "streams/spliterators.hpp"
#include "support/assert.hpp"

namespace pls::streams {

/// Spliterator over a pull function `std::optional<T>()` (nullopt = end).
/// try_split materialises the next batch into an ArraySpliterator; batch
/// sizes grow arithmetically (1024, 2048, ...) up to a cap, Java's
/// strategy for unknown-size sources.
template <typename T, typename Pull>
class UnsizedSpliterator final : public Spliterator<T> {
 public:
  using Action = typename Spliterator<T>::Action;

  static constexpr std::uint64_t kBatchUnit = 1024;
  static constexpr std::uint64_t kMaxBatch = 1 << 20;

  explicit UnsizedSpliterator(std::shared_ptr<Pull> pull)
      : pull_(std::move(pull)) {
    PLS_CHECK(pull_ != nullptr, "UnsizedSpliterator requires a source");
  }

  bool try_advance(Action action) override {
    if (exhausted_) return false;
    std::optional<T> next = (*pull_)();
    if (!next.has_value()) {
      exhausted_ = true;
      return false;
    }
    action(*next);
    return true;
  }

  std::unique_ptr<Spliterator<T>> try_split() override {
    if (exhausted_) return nullptr;
    const std::uint64_t target =
        std::min<std::uint64_t>(kMaxBatch, batches_ * kBatchUnit);
    auto batch = std::make_shared<std::vector<T>>();
    batch->reserve(target);
    while (batch->size() < target) {
      std::optional<T> next = (*pull_)();
      if (!next.has_value()) {
        exhausted_ = true;
        break;
      }
      batch->push_back(std::move(*next));
    }
    if (batch->empty()) return nullptr;
    ++batches_;
    return std::make_unique<ArraySpliterator<T>>(
        std::shared_ptr<const std::vector<T>>(batch, batch.get()));
  }

  std::uint64_t estimate_size() const override {
    // Unknown: Java reports Long.MAX_VALUE; do the same so the evaluator
    // keeps splitting until the source dries up.
    return exhausted_ ? 0 : std::numeric_limits<std::uint64_t>::max();
  }

  Characteristics characteristics() const override { return kOrdered; }

 private:
  std::shared_ptr<Pull> pull_;
  std::uint64_t batches_ = 1;
  bool exhausted_ = false;
};

/// Stream over seed, next(seed), next(next(seed)), ... — infinite; bound
/// it with .limit(n). (The analogue of Stream.iterate.)
template <typename T, typename Next>
auto iterate_stream(T seed, Next next) {
  struct Pull {
    T current;
    Next step;
    bool first = true;
    std::optional<T> operator()() {
      if (first) {
        first = false;
        return current;
      }
      current = step(current);
      return current;
    }
  };
  auto pull = std::make_shared<Pull>(Pull{std::move(seed), std::move(next)});
  return std::make_unique<UnsizedSpliterator<T, Pull>>(std::move(pull));
}

}  // namespace pls::streams
