// Compile-time fused stage stacks: the typed static-pipeline API.
//
// The dynamic fusion engine (streams/fusion.hpp) erases every stage behind
// a StageNode and pays, per kFusionChunk batch, one virtual accept_chunk
// plus one scratch store/load round-trip *per stage*. When the chain shape
// is statically known, none of that is necessary: this header represents
// the ops as value types in a std::tuple whose *type* is the chain, so the
// whole map/filter/peek stack compiles into a single inlined loop per
// contiguous chunk — one scratch buffer, one virtual hop into the terminal,
// zero calls between stages.
//
// Integration point: the entire static stack becomes ONE StageNode
// (StaticChainStage) appended to the ordinary FusedPipeline obtained from
// fuse_pipeline<S>(). Splitting, destination-passing collect admission,
// observe-counter parity and the terminal drivers are all reused unchanged,
// so a static pipeline is observationally identical to its dynamic
// equivalent — element order, per-element evaluation order, and results are
// the same (bit-identical, including floating point: the static chain never
// re-associates; only the opt-in SIMD collectors in support/simd.hpp do).
//
// Static admission is decided by the type system: the vocabulary is
// map / filter / peek / flat_map only. Cancelling stages (limit,
// take_while) are deliberately not expressible — they force element-mode
// driving, which would erase the whole point of the static chain; spell
// those with the dynamic Stream API (docs/execution.md has the admission
// table). Stateful stages (distinct, sorted) are likewise dynamic-only:
// they carry runtime state that defeats splitting. Source
// shape admission (windowed, SIZED|SUBSIZED) stays a runtime question, and
// on refusal the pipeline falls back to the dynamic wrapper path with the
// same ops applied — same results, slower transport.
//
// Entry points:
//   pls::pipe(stages::map(f), stages::filter(p), ...).over(vec)...
//   Stream<T>::stages(stages::map(f), ...)  — adopt an existing stream's
//     source and execution settings mid-chain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <tuple>
#include <type_traits>
#include <typeinfo>
#include <utility>
#include <vector>

#include "streams/fusion.hpp"
#include "streams/parallel_eval.hpp"
#include "streams/sink.hpp"
#include "streams/spliterator.hpp"
#include "streams/stream.hpp"
#include "support/assert.hpp"

namespace pls::streams {

// ---- stage vocabulary -------------------------------------------------
//
// Each op is a plain value type tagged with a category; the tuple of op
// types IS the pipeline's compile-time description. Factories are the
// user-facing spelling: stages::map(fn), stages::filter(pred),
// stages::peek(observer).

namespace stages {

struct MapTag {};
struct FilterTag {};
struct PeekTag {};
struct FlatMapTag {};

template <typename Fn>
struct MapOp {
  using category = MapTag;
  Fn fn;
};

template <typename Pred>
struct FilterOp {
  using category = FilterTag;
  Pred pred;
};

template <typename Fn>
struct PeekOp {
  using category = PeekTag;
  Fn fn;
};

template <typename Fn>
struct FlatMapOp {
  using category = FlatMapTag;
  Fn fn;
};

template <typename Fn>
constexpr MapOp<std::decay_t<Fn>> map(Fn&& fn) {
  return {std::forward<Fn>(fn)};
}

template <typename Pred>
constexpr FilterOp<std::decay_t<Pred>> filter(Pred&& pred) {
  return {std::forward<Pred>(pred)};
}

template <typename Fn>
constexpr PeekOp<std::decay_t<Fn>> peek(Fn&& fn) {
  return {std::forward<Fn>(fn)};
}

template <typename Fn>
constexpr FlatMapOp<std::decay_t<Fn>> flat_map(Fn&& fn) {
  return {std::forward<Fn>(fn)};
}

}  // namespace stages

template <typename Op, typename = void>
struct is_stage_op : std::false_type {};
template <typename Op>
struct is_stage_op<Op, std::void_t<typename Op::category>> : std::true_type {
};
template <typename Op>
inline constexpr bool is_stage_op_v = is_stage_op<std::decay_t<Op>>::value;

// ---- chain type computation ------------------------------------------

template <typename In, typename Op>
struct stage_output;
template <typename In, typename Fn>
struct stage_output<In, stages::MapOp<Fn>> {
  using type = std::decay_t<std::invoke_result_t<const Fn&, const In&>>;
};
template <typename In, typename Pred>
struct stage_output<In, stages::FilterOp<Pred>> {
  using type = In;
};
template <typename In, typename Fn>
struct stage_output<In, stages::PeekOp<Fn>> {
  using type = In;
};
template <typename In, typename Fn>
struct stage_output<In, stages::FlatMapOp<Fn>> {
  // The op returns a range of outputs; the stage's element type is that
  // range's value_type.
  using type = typename std::decay_t<
      std::invoke_result_t<const Fn&, const In&>>::value_type;
};

template <typename In, typename... Ops>
struct chain_output {
  using type = In;
};
template <typename In, typename Op, typename... Rest>
struct chain_output<In, Op, Rest...>
    : chain_output<typename stage_output<In, Op>::type, Rest...> {};

/// Element type produced by pushing an In through the whole op stack.
template <typename In, typename... Ops>
using chain_output_t = typename chain_output<In, Ops...>::type;

template <typename... Ops>
inline constexpr bool chain_has_filter_v =
    (std::is_same_v<typename Ops::category, stages::FilterTag> || ...);

/// True when every op yields exactly one output per input. Filter drops
/// elements and flat_map fans out, so either breaks the 1:1 contract (and
/// with it dense chunk mode and sized sink propagation).
template <typename... Ops>
inline constexpr bool chain_one_to_one_v =
    !((std::is_same_v<typename Ops::category, stages::FilterTag> ||
       std::is_same_v<typename Ops::category, stages::FlatMapTag>) ||
      ...);

namespace detail {

/// Push one value through ops [I..N) and hand every surviving output to
/// `emit`. Fully inlined: `if constexpr` dispatch on the category tag, no
/// indirection anywhere.
template <std::size_t I, typename Tuple, typename T, typename Emit>
inline void push_through(const Tuple& ops, const T& v, Emit&& emit) {
  if constexpr (I == std::tuple_size_v<Tuple>) {
    emit(v);
  } else {
    using Op = std::tuple_element_t<I, Tuple>;
    using Cat = typename Op::category;
    const auto& op = std::get<I>(ops);
    if constexpr (std::is_same_v<Cat, stages::MapTag>) {
      push_through<I + 1>(ops, op.fn(v), std::forward<Emit>(emit));
    } else if constexpr (std::is_same_v<Cat, stages::FilterTag>) {
      if (op.pred(v)) push_through<I + 1>(ops, v, std::forward<Emit>(emit));
    } else if constexpr (std::is_same_v<Cat, stages::FlatMapTag>) {
      for (const auto& out : op.fn(v))
        push_through<I + 1>(ops, out, emit);
    } else {
      op.fn(v);
      push_through<I + 1>(ops, v, std::forward<Emit>(emit));
    }
  }
}

/// 1:1 chains only (no filter): compute the chain's output for one input
/// as a plain expression, so the per-chunk loop is a straight-line indexed
/// store the vectorizer can handle.
template <std::size_t I, typename Tuple, typename T>
inline auto apply_chain(const Tuple& ops, const T& v) {
  if constexpr (I == std::tuple_size_v<Tuple>) {
    return v;
  } else {
    using Op = std::tuple_element_t<I, Tuple>;
    using Cat = typename Op::category;
    const auto& op = std::get<I>(ops);
    static_assert(!std::is_same_v<Cat, stages::FilterTag> &&
                      !std::is_same_v<Cat, stages::FlatMapTag>,
                  "apply_chain is for 1:1 chains");
    if constexpr (std::is_same_v<Cat, stages::MapTag>) {
      return apply_chain<I + 1>(ops, op.fn(v));
    } else {
      op.fn(v);
      return apply_chain<I + 1>(ops, v);
    }
  }
}

}  // namespace detail

// ---- the fused stage --------------------------------------------------

/// Sink applying an entire static op stack inline per chunk. One scratch
/// buffer for the whole chain (stage-local scratches disappear), one
/// downstream accept_chunk per batch.
template <typename In, typename... Ops>
class StaticChainSink final : public Sink<In> {
 public:
  using Out = chain_output_t<In, Ops...>;

 private:
  static constexpr bool kOneToOne = chain_one_to_one_v<Ops...>;
  static constexpr bool kBatched = std::is_move_constructible_v<Out>;
  // Dense mode: every input yields exactly one output, so the chunk loop
  // writes scratch_[i] directly instead of push_back bookkeeping.
  static constexpr bool kDense =
      kOneToOne && std::is_default_constructible_v<Out>;

 public:
  StaticChainSink(std::shared_ptr<const std::tuple<Ops...>> ops,
                  Sink<Out>& down)
      : ops_(std::move(ops)), down_(down) {
    if constexpr (kBatched) scratch_.reserve(kFusionChunk);
  }

  void begin(std::uint64_t size) override {
    down_.begin(kOneToOne ? size : kUnknownSinkSize);
  }
  void end() override { down_.end(); }
  bool cancellation_requested() const override {
    return down_.cancellation_requested();
  }

  void accept(const In& value) override {
    detail::push_through<0>(*ops_, value,
                            [&](const Out& out) { down_.accept(out); });
  }

  void accept_chunk(const In* values, std::size_t n) override {
    if constexpr (sizeof...(Ops) == 0) {
      down_.accept_chunk(values, n);
    } else if constexpr (!kBatched) {
      for (std::size_t i = 0; i < n; ++i) accept(values[i]);
    } else {
      const std::tuple<Ops...>& ops = *ops_;
      while (n > 0) {
        const std::size_t m = n < kFusionChunk ? n : kFusionChunk;
        if constexpr (kDense) {
          scratch_.resize(m);
          Out* out = scratch_.data();
          for (std::size_t i = 0; i < m; ++i)
            out[i] = detail::apply_chain<0>(ops, values[i]);
          down_.accept_chunk(out, m);
        } else {
          scratch_.clear();
          for (std::size_t i = 0; i < m; ++i) {
            detail::push_through<0>(ops, values[i], [&](const Out& out) {
              scratch_.push_back(out);
            });
          }
          if (!scratch_.empty())
            down_.accept_chunk(scratch_.data(), scratch_.size());
        }
        values += m;
        n -= m;
      }
    }
  }

 private:
  std::shared_ptr<const std::tuple<Ops...>> ops_;
  Sink<Out>& down_;
  std::vector<Out> scratch_;
};

/// The whole static stack as ONE StageNode, so the existing FusedPipeline
/// machinery (splitting, DPS admission, counter parity, terminal drivers)
/// applies unchanged.
template <typename In, typename... Ops>
class StaticChainStage final : public StageNode {
 public:
  using Out = chain_output_t<In, Ops...>;

  explicit StaticChainStage(std::shared_ptr<const std::tuple<Ops...>> ops)
      : ops_(std::move(ops)) {}

  std::unique_ptr<SinkControl> wrap_sink(
      SinkControl& downstream) const override {
    return std::make_unique<StaticChainSink<In, Ops...>>(
        ops_, static_cast<Sink<Out>&>(downstream));
  }

  const std::type_info& input_type() const noexcept override {
    return typeid(In);
  }
  const std::type_info& output_type() const noexcept override {
    return typeid(Out);
  }
  bool one_to_one() const noexcept override {
    return chain_one_to_one_v<Ops...>;
  }
  std::uint64_t transform_count(std::uint64_t count) const noexcept override {
    return chain_one_to_one_v<Ops...> ? count : kUnknownSinkSize;
  }

 private:
  std::shared_ptr<const std::tuple<Ops...>> ops_;
};

// ---- the typed pipeline facade ---------------------------------------

/// A single-use pipeline whose stage list is part of its type. Mirrors
/// Stream's execution builders and terminals; on terminal evaluation it
/// fuses the source, appends the one StaticChainStage, and runs the
/// unified terminal dispatch. When the source refuses fusion (or fusion is
/// disabled) it falls back to the dynamic wrapper path with identical ops.
template <typename S, typename... Ops>
class StaticPipeline {
 public:
  /// Output element type of the whole chain — a compile-time fact here,
  /// where the dynamic Stream only knows it per-stage.
  using value_type = chain_output_t<S, Ops...>;

  StaticPipeline(std::unique_ptr<Spliterator<S>> source,
                 std::shared_ptr<const std::tuple<Ops...>> ops, bool parallel,
                 ExecutionConfig config)
      : source_(std::move(source)),
        ops_(std::move(ops)),
        parallel_(parallel),
        config_(config) {
    PLS_CHECK(source_ != nullptr,
              "StaticPipeline requires a source spliterator");
  }

  /// Adopt a stream's source and execution settings (used by
  /// StagePipe::over and Stream::stages).
  static StaticPipeline adopt(Stream<S> s,
                              std::shared_ptr<const std::tuple<Ops...>> ops) {
    return StaticPipeline(std::move(s.source_), std::move(ops), s.parallel_,
                          s.config_);
  }

  // ---- execution configuration (same contract as Stream's) -----------

  StaticPipeline& parallel() & = delete;
  StaticPipeline&& parallel() && {
    parallel_ = true;
    return std::move(*this);
  }

  StaticPipeline&& parallel(const ExecutionConfig& cfg) && {
    parallel_ = true;
    config_ = cfg;
    return std::move(*this);
  }

  StaticPipeline& sequential() & = delete;
  StaticPipeline&& sequential() && {
    parallel_ = false;
    return std::move(*this);
  }

  bool is_parallel() const noexcept { return parallel_; }

  StaticPipeline&& via(forkjoin::ForkJoinPool& pool) && {
    config_.with_pool(pool);
    return std::move(*this);
  }

  StaticPipeline&& with_config(const ExecutionConfig& cfg) && {
    config_ = cfg;
    return std::move(*this);
  }

  StaticPipeline&& with_min_chunk(std::uint64_t n) && {
    config_.with_min_chunk(n);
    return std::move(*this);
  }

  StaticPipeline&& with_sized_sink(bool enabled) && {
    config_.with_sized_sink(enabled);
    return std::move(*this);
  }

  StaticPipeline&& with_fusion(bool enabled) && {
    config_.with_fusion(enabled);
    return std::move(*this);
  }

  const ExecutionConfig& config() const noexcept { return config_; }

  // ---- growing the stack ---------------------------------------------

  /// Append further ops; returns a pipeline of the extended type.
  template <typename... More>
  StaticPipeline<S, Ops..., std::decay_t<More>...> stages(More&&... more) && {
    static_assert((is_stage_op_v<More> && ...),
                  "stages(...) takes stage ops (stages::map/filter/peek/flat_map)");
    auto merged = std::make_shared<const std::tuple<Ops..., std::decay_t<More>...>>(
        std::tuple_cat(std::tuple<Ops...>(*ops_),
                       std::tuple<std::decay_t<More>...>(
                           std::forward<More>(more)...)));
    return StaticPipeline<S, Ops..., std::decay_t<More>...>(
        std::move(source_), std::move(merged), parallel_, config_);
  }

  // ---- terminal operations -------------------------------------------

  template <typename C>
  typename C::result_type collect(const C& collector) && {
    return std::move(*this).run(terminals::collect(collector));
  }

  template <typename Op>
  std::optional<value_type> reduce(Op op) && {
    return std::move(*this).run(terminals::reduce(op));
  }

  template <typename Op>
  value_type reduce(value_type identity, Op op) && {
    auto r = std::move(*this).run(terminals::reduce(op));
    return r.has_value() ? std::move(*r) : std::move(identity);
  }

  template <typename Fn>
  void for_each(Fn fn) && {
    std::move(*this).run(terminals::for_each(fn));
  }

  std::uint64_t count() && {
    return std::move(*this).run(terminals::count());
  }

  std::vector<value_type> to_vector() && {
    return std::move(*this).run(
        terminals::collect(VectorCollector<value_type>{}));
  }

  /// Dissolve into the equivalent dynamic stream (the documented fallback
  /// form): same ops as wrapper spliterators, same settings.
  Stream<value_type> to_stream() && {
    Stream<S> s(std::move(source_), parallel_);
    s.config_ = config_;
    return apply_from<0>(std::move(s));
  }

 private:
  template <typename S2, typename... Ops2>
  friend class StaticPipeline;

  /// Unified terminal drive: static-fused when the source admits fusion,
  /// dynamic wrapper evaluation otherwise.
  template <typename Term>
  auto run(const Term& term) && {
    PLS_CHECK(source_ != nullptr, "StaticPipeline is single-use");
    if (auto fused = plan_static_fuse<S>(source_, config_)) {
      if constexpr (sizeof...(Ops) > 0) {
        fused->append_stage(
            std::make_shared<StaticChainStage<S, Ops...>>(ops_));
      }
      return evaluate_fused<value_type>(*fused, term, parallel_, config_,
                                        PlanOrigin::kStatic);
    }
    auto s = std::move(*this).to_stream();
    return evaluate(s.source_, term, s.parallel_, s.config_,
                    PlanOrigin::kStaticFallback);
  }

  template <std::size_t I, typename Cur>
  auto apply_from(Stream<Cur> s) {
    if constexpr (I == sizeof...(Ops)) {
      return s;
    } else {
      using Op = std::tuple_element_t<I, std::tuple<Ops...>>;
      using Cat = typename Op::category;
      const auto& op = std::get<I>(*ops_);
      if constexpr (std::is_same_v<Cat, stages::MapTag>) {
        return apply_from<I + 1>(std::move(s).map(op.fn));
      } else if constexpr (std::is_same_v<Cat, stages::FilterTag>) {
        return apply_from<I + 1>(std::move(s).filter(op.pred));
      } else if constexpr (std::is_same_v<Cat, stages::FlatMapTag>) {
        return apply_from<I + 1>(std::move(s).flat_map(op.fn));
      } else {
        return apply_from<I + 1>(std::move(s).peek(op.fn));
      }
    }
  }

  std::unique_ptr<Spliterator<S>> source_;
  std::shared_ptr<const std::tuple<Ops...>> ops_;
  bool parallel_ = false;
  ExecutionConfig config_{};
};

// ---- source-free builder ---------------------------------------------

/// A stage stack waiting for a source: the result of pls::pipe(...).
/// `over(...)` binds a source and yields the typed pipeline.
template <typename... Ops>
class StagePipe {
 public:
  explicit StagePipe(std::tuple<Ops...> ops)
      : ops_(std::make_shared<const std::tuple<Ops...>>(std::move(ops))) {}

  /// Bind to a vector (copied/moved into shared storage).
  template <typename T>
  StaticPipeline<T, Ops...> over(std::vector<T> values) const {
    return StaticPipeline<T, Ops...>::adopt(Stream<T>::of(std::move(values)),
                                            ops_);
  }

  /// Bind to shared storage (no copy).
  template <typename T>
  StaticPipeline<T, Ops...> over_shared(
      std::shared_ptr<const std::vector<T>> values) const {
    return StaticPipeline<T, Ops...>::adopt(
        Stream<T>::of_shared(std::move(values)), ops_);
  }

  /// Bind to an integer range [begin, end).
  template <typename T>
  StaticPipeline<T, Ops...> over_range(T begin, T end) const {
    return StaticPipeline<T, Ops...>::adopt(Stream<T>::range(begin, end),
                                            ops_);
  }

  /// Adopt an existing stream (source, parallelism and config carry over);
  /// any ops already applied to the stream run dynamically upstream of the
  /// static stack.
  template <typename T>
  StaticPipeline<T, Ops...> over(Stream<T> s) const {
    return StaticPipeline<T, Ops...>::adopt(std::move(s), ops_);
  }

 private:
  std::shared_ptr<const std::tuple<Ops...>> ops_;
};

/// Build a source-free static stage stack: pipe(map(f), filter(p), ...).
template <typename... Ops>
auto pipe(Ops&&... ops) {
  static_assert((is_stage_op_v<Ops> && ...),
                "pipe(...) takes stage ops (stages::map/filter/peek/flat_map)");
  return StagePipe<std::decay_t<Ops>...>(
      std::tuple<std::decay_t<Ops>...>(std::forward<Ops>(ops)...));
}

// ---- Stream::stages out-of-line definition ---------------------------

template <typename T>
template <typename... Ops>
auto Stream<T>::stages(Ops&&... ops) && {
  static_assert((is_stage_op_v<Ops> && ...),
                "stages(...) takes stage ops (stages::map/filter/peek/flat_map)");
  auto tuple = std::make_shared<const std::tuple<std::decay_t<Ops>...>>(
      std::forward<Ops>(ops)...);
  return StaticPipeline<T, std::decay_t<Ops>...>(
      std::move(source_), std::move(tuple), parallel_, config_);
}

}  // namespace pls::streams
