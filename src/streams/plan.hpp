// The execution planner: every admission decision the runtime makes —
// pipeline-fusion admission, destination-passing (DPS) collect admission,
// static-fusion fallback, drive mode, split grain, and chunk-kernel
// eligibility — is decided HERE, once, and recorded in an ExecutionPlan
// value. Terminal evaluation (streams/parallel_eval.hpp), the typed
// static pipeline, the multiway collect, and the PowerList adaptation
// layer all plan-then-execute: they ask plan_pipeline() (or one of the
// single-home predicates below) and obey the verdicts, instead of
// re-deriving routing at each entry point.
//
// The plan is pure data: source shape, stage summary, a fusion verdict
// with its reason, a DPS verdict with its reason, the drive mode, the
// resolved grain, and the kernel selection. explain() renders it for
// humans; bench JSON carries it as plan_* fields; the last plan of the
// calling thread is kept for ExecutionReport / pls::session::explain().
//
// On top of the plan sits the first slice of adaptive execution (ROADMAP
// item 5): a process-global PlanCache keyed by pipeline shape. Profiled
// runs feed their critical-path trees (measured T1 / T∞, per-leaf
// accumulate cost, leaf-run latency quantiles) back into the cache, and
// the next plan for the same shape auto-picks min_chunk when the user
// left it 0 — never coarser than the Java-style n/(4P) default, finer
// when the measured per-element cost shows default leaves overshooting
// the leaf-time budget (docs/execution.md, "Execution planning").
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>

#include "forkjoin/pool.hpp"
#include "observe/config.hpp"
#include "observe/counters.hpp"
#include "observe/critical_path.hpp"
#include "observe/histogram.hpp"
#include "observe/metrics.hpp"
#include "observe/run_registry.hpp"
#include "streams/fusion.hpp"
#include "streams/spliterator.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace pls::streams {

// ---- execution configuration -----------------------------------------

/// What an ingest queue does with offered elements while congested (at or
/// above its high watermark) — the qband-style flow-control choice of the
/// service layer (src/service/queue.hpp, docs/service.md).
enum class OverloadPolicy : std::uint8_t {
  kBlock,   ///< producers wait until the queue drains below the low mark
  kShed,    ///< drop offered elements (counted) until below the low mark
  kSample,  ///< keep every k-th offered element, drop (and count) the rest
};

inline const char* overload_policy_name(OverloadPolicy p) {
  switch (p) {
    case OverloadPolicy::kBlock: return "block";
    case OverloadPolicy::kShed: return "shed";
    case OverloadPolicy::kSample: return "sample";
  }
  return "?";
}

/// Where and how a terminal operation executes. The chainable with_*
/// setters below are THE execution-config builder: Stream<T>'s with_*
/// methods and pls::session::stream_config() both delegate here, so every
/// knob exists exactly once and round-trips losslessly between surfaces.
struct ExecutionConfig {
  /// Pool for parallel evaluation; nullptr selects ForkJoinPool::common().
  forkjoin::ForkJoinPool* pool = nullptr;
  /// Split until chunks are at most this size; 0 selects the Java-style
  /// default, estimate_size / (4 * parallelism) — or, when auto-grain is
  /// enabled and the PlanCache holds a profile for this pipeline shape,
  /// the profiler-tuned grain (see PlanCache below).
  std::uint64_t min_chunk = 0;
  /// Permit the destination-passing (sized-sink) collect path when source
  /// and collector qualify. Off forces the supplier/combiner path — used
  /// by the fallback-equivalence tests and the A/B benches.
  bool sized_sink = true;
  /// Permit the push-mode fusion engine for terminal evaluation when the
  /// pipeline qualifies (streams/fusion.hpp). Off forces the wrapper
  /// (pull-mode) walk — the differential-testing and A/B-bench toggle.
  bool fusion = true;
  /// Let the planner consume PlanCache profiles to pick min_chunk when
  /// it was left 0. Also enabled process-wide by PLS_AUTO_GRAIN=1.
  bool auto_grain = false;
  /// Service-layer knobs (src/service/): bounded ingest-queue capacity
  /// per session, the qband watermarks within it, and what to do with
  /// offered elements while congested. Ignored by batch terminals.
  std::size_t queue_capacity = 1024;
  /// High watermark: the queue is congested at or above this depth.
  /// 0 selects queue_capacity.
  std::size_t high_watermark = 0;
  /// Low watermark: congestion clears once depth drains to or below this.
  /// 0 selects high_watermark / 2.
  std::size_t low_watermark = 0;
  OverloadPolicy overload = OverloadPolicy::kBlock;

  ExecutionConfig& with_pool(forkjoin::ForkJoinPool& p) {
    pool = &p;
    return *this;
  }
  ExecutionConfig& with_min_chunk(std::uint64_t n) {
    min_chunk = n;
    return *this;
  }
  ExecutionConfig& with_sized_sink(bool enabled) {
    sized_sink = enabled;
    return *this;
  }
  ExecutionConfig& with_fusion(bool enabled) {
    fusion = enabled;
    return *this;
  }
  ExecutionConfig& with_auto_grain(bool enabled) {
    auto_grain = enabled;
    return *this;
  }
  ExecutionConfig& with_queue_capacity(std::size_t n) {
    queue_capacity = n;
    return *this;
  }
  /// Set both qband marks at once (the pair is only meaningful together).
  /// `low` defaults to 0 = "half of high", matching the field defaults.
  ExecutionConfig& with_watermarks(std::size_t high, std::size_t low = 0) {
    high_watermark = high;
    low_watermark = low;
    return *this;
  }
  ExecutionConfig& with_overload_policy(OverloadPolicy p) {
    overload = p;
    return *this;
  }

  forkjoin::ForkJoinPool& effective_pool() const {
    return pool != nullptr ? *pool : forkjoin::ForkJoinPool::common();
  }

  /// The effective qband marks after defaulting: high = capacity when
  /// unset, low = high / 2 (at least 1) when unset. PLS_CHECKed so a
  /// mis-ordered pair fails loudly at session construction.
  std::size_t effective_high_watermark() const {
    const std::size_t high =
        high_watermark == 0 ? queue_capacity : high_watermark;
    PLS_CHECK(high <= queue_capacity,
              "high watermark exceeds queue capacity");
    return high;
  }
  std::size_t effective_low_watermark() const {
    const std::size_t high = effective_high_watermark();
    const std::size_t low =
        low_watermark == 0 ? (high / 2 > 0 ? high / 2 : 1) : low_watermark;
    PLS_CHECK(low <= high, "low watermark exceeds high watermark");
    return low;
  }

  std::uint64_t target_size(std::uint64_t estimate, unsigned parallelism) const;
};

// ---- plan vocabulary -------------------------------------------------

/// Which terminal operation the plan serves.
enum class TerminalKind : std::uint8_t {
  kCollect,
  kReduce,
  kForEach,
  kCount,
  kAnyMatch,   ///< short-circuit: true on first satisfying element
  kAllMatch,   ///< short-circuit: false on first failing element
  kNoneMatch,  ///< short-circuit: false on first satisfying element
  kFindFirst,  ///< short-circuit: first element in encounter order
  kPowerFunction,  ///< synthesized plans of the skeleton executors
};

inline const char* terminal_name(TerminalKind k) {
  switch (k) {
    case TerminalKind::kCollect: return "collect";
    case TerminalKind::kReduce: return "reduce";
    case TerminalKind::kForEach: return "for_each";
    case TerminalKind::kCount: return "count";
    case TerminalKind::kAnyMatch: return "any_match";
    case TerminalKind::kAllMatch: return "all_match";
    case TerminalKind::kNoneMatch: return "none_match";
    case TerminalKind::kFindFirst: return "find_first";
    case TerminalKind::kPowerFunction: return "power_function";
  }
  return "?";
}

/// Short-circuit terminals cancel through the terminal sink itself: their
/// fused drive is always the element loop, whatever the stage chain says.
inline bool terminal_short_circuits(TerminalKind k) {
  return k == TerminalKind::kAnyMatch || k == TerminalKind::kAllMatch ||
         k == TerminalKind::kNoneMatch || k == TerminalKind::kFindFirst;
}

/// How the terminal drives the pipeline.
enum class DriveMode : std::uint8_t {
  kSequential,   ///< one leaf on the calling thread
  kForkJoinTree, ///< recursive split to grain, fork-join leaves
  kElementLoop,  ///< cancelling fused chain: single element-mode push loop
  kStatefulLoop, ///< stateful fused chain: single leaf, chunked transport
};

inline const char* drive_name(DriveMode m) {
  switch (m) {
    case DriveMode::kSequential: return "sequential";
    case DriveMode::kForkJoinTree: return "fork-join tree";
    case DriveMode::kElementLoop: return "element loop";
    case DriveMode::kStatefulLoop: return "stateful loop";
  }
  return "?";
}

/// Leaf kernel selection: whole-chunk collector fold (the SIMD hook,
/// streams/collector.hpp ChunkAccumulatingCollector) vs per-element loop.
enum class KernelMode : std::uint8_t { kScalarLoop, kChunkKernel };

inline const char* kernel_name(KernelMode m) {
  return m == KernelMode::kChunkKernel ? "chunk" : "scalar";
}

/// Which entry point produced the plan.
enum class PlanOrigin : std::uint8_t {
  kDynamic,        ///< Stream terminal through evaluate()
  kStatic,         ///< StaticPipeline, fused with its compiled stage stack
  kStaticFallback, ///< StaticPipeline dissolved into the dynamic stream
  kSynthesized,    ///< skeleton executor (no stream pipeline)
  kService,        ///< ServiceSession micro-batch through a reused chain
};

inline const char* origin_name(PlanOrigin o) {
  switch (o) {
    case PlanOrigin::kDynamic: return "dynamic";
    case PlanOrigin::kStatic: return "static";
    case PlanOrigin::kStaticFallback: return "static-fallback";
    case PlanOrigin::kSynthesized: return "synthesized";
    case PlanOrigin::kService: return "service";
  }
  return "?";
}

/// Why a verdict came out the way it did. kAdmitted is the positive
/// verdict; everything else names the first failed admission test.
enum class PlanReason : std::uint8_t {
  kAdmitted,
  kDisabledByConfig,
  kSourceNotSizedSubsized,
  kSourceNotWindowed,
  kWindowCountMismatch,
  kNotPowerOfTwo,
  kChainNotOneToOne,
  kChainCancels,
  kChainStateful,
  kChainNotFusable,
  kCollectorNotSized,
  kTerminalNotCollect,
  kNotAStreamPipeline,
};

inline const char* reason_name(PlanReason r) {
  switch (r) {
    case PlanReason::kAdmitted: return "admitted";
    case PlanReason::kDisabledByConfig: return "disabled by config";
    case PlanReason::kSourceNotSizedSubsized:
      return "source not SIZED|SUBSIZED";
    case PlanReason::kSourceNotWindowed:
      return "source names no destination window";
    case PlanReason::kWindowCountMismatch:
      return "window count != estimated size";
    case PlanReason::kNotPowerOfTwo: return "count not a power of two";
    case PlanReason::kChainNotOneToOne: return "chain has a non-1:1 stage";
    case PlanReason::kChainCancels: return "chain has a cancelling stage";
    case PlanReason::kChainStateful:
      return "chain has a stateful stage (single-leaf drive only)";
    case PlanReason::kChainNotFusable:
      return "a wrapper or the source refused fusion";
    case PlanReason::kCollectorNotSized:
      return "collector is not a sized sink";
    case PlanReason::kTerminalNotCollect: return "terminal is not collect";
    case PlanReason::kNotAStreamPipeline:
      return "skeleton execution, no stream pipeline";
  }
  return "?";
}

/// Where the resolved grain came from.
enum class GrainSource : std::uint8_t {
  kNone,      ///< sequential drive: no splitting, grain unused
  kExplicit,  ///< cfg.min_chunk
  kDefault,   ///< Java-style estimate / (4 * parallelism)
  kAutoTuned, ///< PlanCache profile (auto-grain)
};

inline const char* grain_source_name(GrainSource g) {
  switch (g) {
    case GrainSource::kNone: return "n/a";
    case GrainSource::kExplicit: return "explicit";
    case GrainSource::kDefault: return "default n/(4P)";
    case GrainSource::kAutoTuned: return "auto-tuned";
  }
  return "?";
}

// ---- the plan --------------------------------------------------------

/// One terminal operation's complete routing decision, as pure data.
/// Everything the execution layer needs to run — and everything a human
/// needs to see why it ran that way.
struct ExecutionPlan {
  // Provenance.
  PlanOrigin origin = PlanOrigin::kDynamic;
  TerminalKind terminal = TerminalKind::kCollect;
  bool parallel = false;
  unsigned parallelism = 1;

  // Source shape, as seen by the chosen route (fused: the stripped
  // source; legacy: the outermost wrapper with its delegated window).
  std::uint64_t source_size = 0;
  bool sized = false;
  bool subsized = false;
  bool windowed = false;
  bool power_of_two = false;

  // Stage summary. Fused chains report their stripped stage chain;
  // wrapper chains are opaque (stages == 0, flags at their defaults).
  std::uint32_t stages = 0;
  bool one_to_one = true;
  bool cancels = false;
  bool stateful = false;

  // Verdicts, each with the first failed admission test as its reason.
  bool fused = false;
  PlanReason fusion_reason = PlanReason::kAdmitted;
  bool dps = false;
  PlanReason dps_reason = PlanReason::kAdmitted;
  std::optional<OutputWindow> window{};  ///< set iff dps

  // Routing.
  DriveMode drive = DriveMode::kSequential;
  std::uint64_t grain = 0;
  GrainSource grain_source = GrainSource::kNone;
  KernelMode kernel = KernelMode::kScalarLoop;
  std::uint64_t cache_key = 0;  ///< PlanCache shape key (parallel plans)

  /// Human-readable dump (pls::session::explain()).
  std::string explain() const {
    std::ostringstream os;
    os << "plan: " << terminal_name(terminal) << ", "
       << (parallel ? "parallel" : "sequential");
    if (parallel) os << " (P=" << parallelism << ")";
    os << ", " << origin_name(origin) << '\n';
    os << "  source : " << source_size << " elements";
    if (sized && subsized) os << ", SIZED|SUBSIZED";
    else if (sized) os << ", SIZED";
    if (windowed) os << ", windowed";
    if (power_of_two) os << ", power-of-two";
    os << '\n';
    os << "  stages : ";
    if (fused) {
      os << stages << " fused (" << (one_to_one ? "1:1" : "non-1:1") << ", "
         << (cancels ? "cancelling" : "non-cancelling");
      if (stateful) os << ", stateful";
      os << ")";
    } else {
      os << "wrapper chain (opaque to the planner)";
    }
    os << '\n';
    os << "  fusion : " << reason_name(fusion_reason) << '\n';
    os << "  dps    : " << reason_name(dps_reason);
    if (dps && window.has_value()) {
      os << " (window start=" << window->start << " incr=" << window->incr
         << " count=" << window->count << ")";
    }
    os << '\n';
    os << "  drive  : " << drive_name(drive);
    if (parallel && drive == DriveMode::kForkJoinTree) {
      os << ", grain " << grain << " (" << grain_source_name(grain_source)
         << ")";
    }
    os << '\n';
    os << "  kernel : " << kernel_name(kernel) << '\n';
    return os.str();
  }
};

// ---- admission predicates (the single home) --------------------------

/// Shape test shared by fusion-source admission and DPS admission: the
/// source must be exactly sized through splits (SIZED|SUBSIZED) and name
/// a destination window consistent with its size.
inline PlanReason source_shape_reason(bool sized_subsized,
                                      const std::optional<OutputWindow>& w,
                                      std::uint64_t estimate) {
  if (!sized_subsized) return PlanReason::kSourceNotSizedSubsized;
  if (!w.has_value()) return PlanReason::kSourceNotWindowed;
  if (w->count != estimate) return PlanReason::kWindowCountMismatch;
  return PlanReason::kAdmitted;
}

/// DPS admission adds the power-of-two test (the shape whose tie/zip
/// splits the window arithmetic mirrors).
inline PlanReason dps_window_reason(bool sized_subsized,
                                    const std::optional<OutputWindow>& w,
                                    std::uint64_t estimate) {
  const PlanReason shape = source_shape_reason(sized_subsized, w, estimate);
  if (shape != PlanReason::kAdmitted) return shape;
  if (!is_power_of_two(w->count)) return PlanReason::kNotPowerOfTwo;
  return PlanReason::kAdmitted;
}

/// Admission check for the destination-passing collect over a wrapper
/// pipeline (pull path): the outermost spliterator must be exactly sized,
/// keep exact sizes through splits, name a destination window consistent
/// with its size (only all-1:1 chains delegate one), and hold a power of
/// two elements. Anything else collects through the supplier/combiner
/// path.
template <typename T>
std::optional<OutputWindow> plan_dps_window(const Spliterator<T>& sp) {
  const auto w = output_window_of(sp);
  if (dps_window_reason(sp.has(kSized | kSubsized), w, sp.estimate_size()) !=
      PlanReason::kAdmitted) {
    return std::nullopt;
  }
  return w;
}

/// The fused twin: the chain must be 1:1 (so source position == result
/// position) and non-cancelling; the source must pass the same window
/// tests. Wrappers admit through delegated windows, which only 1:1
/// chains provide, so both overloads admit the same pipelines.
inline std::optional<OutputWindow> plan_dps_window(const FusedPipeline& fp) {
  if (!fp.one_to_one() || fp.cancels() || fp.stateful()) return std::nullopt;
  const auto w = fp.source_window();
  if (dps_window_reason(true, w, fp.estimate_size()) !=
      PlanReason::kAdmitted) {
    return std::nullopt;
  }
  return w;
}

// ---- the fuse step ---------------------------------------------------

/// Source admission for fusion: the source_shape_reason test. This rules
/// out concat (no window), a partially-consumed flat_map product at the
/// bottom of a stripped chain (no window), and the unsized iterate tail
/// (no kSized).
template <typename T>
std::unique_ptr<FusedPipeline> fuse_source(
    std::unique_ptr<Spliterator<T>>& sp) {
  if (source_shape_reason(sp->has(kSized | kSubsized), output_window_of(*sp),
                          sp->estimate_size()) != PlanReason::kAdmitted) {
    return nullptr;
  }
  return std::make_unique<FusedPipelineImpl<T>>(std::move(sp));
}

/// Fuse the pipeline rooted at `sp` (the outermost wrapper or the bare
/// source). On success the pipeline is consumed (`sp` becomes null) and
/// the fused form is returned; on failure `sp` is untouched and nullptr
/// is returned — the caller evaluates through the wrapper path.
template <typename T>
std::unique_ptr<FusedPipeline> fuse_pipeline(
    std::unique_ptr<Spliterator<T>>& sp) {
  if (sp == nullptr) return nullptr;
  if (auto* stage = dynamic_cast<FusableStage*>(sp.get())) {
    auto fused = stage->strip_into_fused();
    if (fused != nullptr) {
      PLS_CHECK(fused->output_type() == typeid(T),
                "fused pipeline output type does not match the terminal");
      sp.reset();
    }
    return fused;
  }
  return fuse_source(sp);
}

/// The static pipeline's fuse-or-fallback decision (its only admission
/// question): strip the bound source iff fusion is enabled. On nullptr
/// the static pipeline dissolves into the dynamic stream, which plans
/// with PlanOrigin::kStaticFallback.
template <typename S>
std::unique_ptr<FusedPipeline> plan_static_fuse(
    std::unique_ptr<Spliterator<S>>& sp, const ExecutionConfig& cfg) {
  if (!cfg.fusion) return nullptr;
  return fuse_pipeline<S>(sp);
}

/// Why fuse_pipeline refused `sp` (for the plan's fusion_reason; the
/// strip walk itself reports only success/failure).
template <typename T>
PlanReason fusion_refusal_reason(const Spliterator<T>& sp) {
  if (dynamic_cast<const FusableStage*>(&sp) != nullptr) {
    return PlanReason::kChainNotFusable;
  }
  const PlanReason shape = source_shape_reason(
      sp.has(kSized | kSubsized), output_window_of(sp), sp.estimate_size());
  return shape != PlanReason::kAdmitted ? shape : PlanReason::kChainNotFusable;
}

// ---- grain policy ----------------------------------------------------

/// The Java-style default split target: estimate / (4 * parallelism),
/// floored at 1 (AbstractTask.suggestTargetSize).
inline std::uint64_t default_grain(std::uint64_t estimate,
                                   unsigned parallelism) {
  const std::uint64_t t = estimate / (4ull * parallelism);
  return t > 0 ? t : 1;
}

inline std::uint64_t ExecutionConfig::target_size(std::uint64_t estimate,
                                                  unsigned parallelism) const {
  if (min_chunk != 0) return min_chunk;
  return default_grain(estimate, parallelism);
}

/// Process-wide auto-grain switch: PLS_AUTO_GRAIN=1 (anything but "" or
/// a leading '0') turns the PlanCache consumer on for every config.
inline bool auto_grain_env() {
  static const bool v = [] {
    const char* e = std::getenv("PLS_AUTO_GRAIN");
    return e != nullptr && e[0] != '\0' && e[0] != '0';
  }();
  return v;
}

inline bool auto_grain_enabled(const ExecutionConfig& cfg) {
  return cfg.auto_grain || auto_grain_env();
}

// ---- the plan cache (adaptive execution, ROADMAP item 5) -------------

/// What a profiled run taught us about one pipeline shape.
struct PlanProfile {
  std::uint64_t samples = 0;      ///< profiled runs folded in
  double per_element_ns = 0.0;    ///< running mean accumulate cost/element
  double work_ns = 0.0;           ///< last measured T1 of the split tree
  double span_ns = 0.0;           ///< last measured T∞
  std::uint64_t leaves = 0;       ///< last leaf count
  double leaf_run_p50_ns = 0.0;   ///< leaf-run histogram median (last run)
  std::uint64_t tuned_grain = 0;  ///< recommendation; 0 = none yet
};

namespace detail {

/// Fold of a critical-path subtree: total work, critical path, leaf
/// accumulate time and element throughput — the measured quantities the
/// grain policy consumes.
struct CpWalkTotals {
  std::uint64_t work_ticks = 0;
  std::uint64_t span_ticks = 0;
  std::uint64_t accumulate_ticks = 0;
  std::uint64_t elements = 0;
  std::uint64_t leaves = 0;
};

inline CpWalkTotals walk_cp(const observe::CpNode* n) {
  CpWalkTotals t;
  if (n == nullptr) return t;
  const CpWalkTotals l = walk_cp(n->left);
  const CpWalkTotals r = walk_cp(n->right);
  t.work_ticks = n->own_ticks() + l.work_ticks + r.work_ticks;
  t.span_ticks = n->own_ticks() + std::max(l.span_ticks, r.span_ticks);
  t.accumulate_ticks =
      n->accumulate_ticks + l.accumulate_ticks + r.accumulate_ticks;
  t.elements = n->elements + l.elements + r.elements;
  t.leaves = (n->is_leaf() ? 1 : 0) + l.leaves + r.leaves;
  return t;
}

}  // namespace detail

/// Leaf-time budget for the auto-tuned grain: leaves should take about
/// this long. Well above the measured per-steal cost (µs), well below
/// typical terminal wall times — so finer grain buys balance without
/// overhead domination.
inline constexpr double kAutoGrainTargetLeafNs = 100e3;  // 100 µs

/// Profiler-feedback grain store, keyed by pipeline shape (terminal kind,
/// source size, parallelism, fused stage summary). plan_feedback() feeds
/// it after each profiled parallel run; plan_pipeline() consumes it when
/// auto-grain is on and min_chunk was left 0.
///
/// Policy: the tuned grain is min(default n/(4P), leaf-time budget /
/// measured per-element cost) — never coarser than the Java default (so
/// an auto-grain plan never has fewer leaves, and a workload the profile
/// fits degrades to exactly the default plan), finer when the measured
/// per-element cost shows default leaves overshooting the 100 µs budget
/// (bounding leaf time bounds the span added by one straggler leaf).
class PlanCache {
 public:
  static PlanCache& global() {
    static PlanCache c;
    return c;
  }

  /// The tuned grain for `key`, if a profile produced one.
  std::optional<std::uint64_t> lookup(std::uint64_t key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it == map_.end() || it->second.tuned_grain == 0) return std::nullopt;
    return it->second.tuned_grain;
  }

  /// The full profile for `key` (diagnostics / tests).
  std::optional<PlanProfile> profile(std::uint64_t key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  /// Install a profile directly (tests, replay).
  void put(std::uint64_t key, const PlanProfile& p) {
    std::lock_guard<std::mutex> lock(mutex_);
    map_[key] = p;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }

  /// The grain recommendation for a shape whose accumulate phase costs
  /// `per_element_ns` per element (see the class comment for the policy).
  static std::uint64_t tuned_grain_for(std::uint64_t estimate,
                                       unsigned parallelism,
                                       double per_element_ns) {
    const std::uint64_t base = default_grain(estimate, parallelism);
    if (per_element_ns <= 0.0) return base;
    const double by_budget = kAutoGrainTargetLeafNs / per_element_ns;
    const std::uint64_t budget =
        by_budget < 1.0 ? 1 : static_cast<std::uint64_t>(by_budget);
    return std::min(base, budget);
  }

  /// Fold one profiled run's critical-path tree into the profile for
  /// `key` and re-derive the tuned grain. No-op when profiling was off
  /// (`root == nullptr` — always the case with PLS_OBSERVE=0) or the
  /// tree carries no accumulate measurements.
  void feed(std::uint64_t key, std::uint64_t estimate, unsigned parallelism,
            const observe::CpNode* root) {
    if (root == nullptr) return;
    const detail::CpWalkTotals t = detail::walk_cp(root);
    if (t.elements == 0 || t.accumulate_ticks == 0) return;
    const double scale = observe::ns_per_tick();
    const double per_element =
        static_cast<double>(t.accumulate_ticks) * scale /
        static_cast<double>(t.elements);
    const double leaf_p50 = observe::aggregate_histograms()
                                .of(observe::Metric::kLeafRun)
                                .quantile(0.5, scale);
    std::lock_guard<std::mutex> lock(mutex_);
    PlanProfile& p = map_[key];
    p.per_element_ns =
        (p.per_element_ns * static_cast<double>(p.samples) + per_element) /
        static_cast<double>(p.samples + 1);
    p.samples += 1;
    p.work_ns = static_cast<double>(t.work_ticks) * scale;
    p.span_ns = static_cast<double>(t.span_ticks) * scale;
    p.leaves = t.leaves;
    p.leaf_run_p50_ns = leaf_p50;
    p.tuned_grain = tuned_grain_for(estimate, parallelism, p.per_element_ns);
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, PlanProfile> map_;
};

/// Deterministic shape key (FNV-1a over the plan-relevant shape fields).
inline std::uint64_t plan_cache_key(TerminalKind kind,
                                    std::uint64_t source_size,
                                    unsigned parallelism, std::uint32_t stages,
                                    bool one_to_one, bool cancels,
                                    bool stateful = false) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(kind));
  mix(source_size);
  mix(parallelism);
  mix(stages);
  mix(one_to_one ? 1 : 2);
  mix(cancels ? 1 : 2);
  if (stateful) mix(3);
  return h;
}

// ---- plan construction -----------------------------------------------

namespace detail {

/// Resolve grain, drive, kernel and cache key once the verdict fields
/// are in place — shared tail of both plan builders.
inline void finish_plan(ExecutionPlan& p, TerminalKind kind,
                        bool chunk_collector, bool parallel,
                        const ExecutionConfig& cfg) {
  p.terminal = kind;
  p.parallel = parallel;
  p.kernel = (p.fused && kind == TerminalKind::kCollect && chunk_collector &&
              !p.dps && !p.cancels)
                 ? KernelMode::kChunkKernel
                 : KernelMode::kScalarLoop;
  // Short-circuit terminals cancel through their terminal sink; fused
  // they always run the single element-mode push loop (sequential
  // encounter-order semantics, exactly like the legacy pull loops).
  const bool terminal_cancels = terminal_short_circuits(kind);
  if (!parallel) {
    p.drive = (p.fused && terminal_cancels) ? DriveMode::kElementLoop
                                            : DriveMode::kSequential;
    p.grain = 0;
    p.grain_source = GrainSource::kNone;
    return;
  }
  p.drive = (p.fused && (p.cancels || terminal_cancels))
                ? DriveMode::kElementLoop
            : (p.fused && p.stateful) ? DriveMode::kStatefulLoop
                                      : DriveMode::kForkJoinTree;
  p.parallelism = cfg.effective_pool().parallelism();
  p.cache_key = plan_cache_key(kind, p.source_size, p.parallelism, p.stages,
                               p.one_to_one, p.cancels, p.stateful);
  if (cfg.min_chunk != 0) {
    p.grain = cfg.min_chunk;
    p.grain_source = GrainSource::kExplicit;
    return;
  }
  p.grain = default_grain(p.source_size, p.parallelism);
  p.grain_source = GrainSource::kDefault;
  if (auto_grain_enabled(cfg)) {
    if (const auto tuned = PlanCache::global().lookup(p.cache_key)) {
      p.grain = std::min(p.grain, std::max<std::uint64_t>(*tuned, 1));
      p.grain_source = GrainSource::kAutoTuned;
    }
  }
}

}  // namespace detail

/// Plan a terminal over an already-stripped FusedPipeline (the static
/// pipeline's entry; also the tail of plan_pipeline on fusion success).
/// `collector_sized` / `chunk_collector` are the compile-time collector
/// facts of the terminal, evaluated at the call site.
inline ExecutionPlan plan_fused_pipeline(const FusedPipeline& fp,
                                         TerminalKind kind,
                                         bool collector_sized,
                                         bool chunk_collector, bool parallel,
                                         const ExecutionConfig& cfg,
                                         PlanOrigin origin) {
  ExecutionPlan p;
  p.origin = origin;
  p.source_size = fp.estimate_size();
  p.sized = true;  // fusion admission requires SIZED|SUBSIZED
  p.subsized = true;
  const auto w = fp.source_window();
  p.windowed = w.has_value();
  p.power_of_two = w.has_value() && is_power_of_two(w->count);
  p.stages = static_cast<std::uint32_t>(fp.stage_count());
  p.one_to_one = fp.one_to_one();
  p.cancels = fp.cancels();
  p.stateful = fp.stateful();
  p.fused = true;
  p.fusion_reason = PlanReason::kAdmitted;
  if (kind != TerminalKind::kCollect) {
    p.dps_reason = PlanReason::kTerminalNotCollect;
  } else if (!collector_sized) {
    p.dps_reason = PlanReason::kCollectorNotSized;
  } else if (!cfg.sized_sink) {
    p.dps_reason = PlanReason::kDisabledByConfig;
  } else if (p.stateful) {
    p.dps_reason = PlanReason::kChainStateful;
  } else if (!p.one_to_one) {
    p.dps_reason = PlanReason::kChainNotOneToOne;
  } else if (p.cancels) {
    p.dps_reason = PlanReason::kChainCancels;
  } else {
    p.dps_reason = dps_window_reason(true, w, fp.estimate_size());
    if (p.dps_reason == PlanReason::kAdmitted) {
      p.dps = true;
      p.window = w;
    }
  }
  detail::finish_plan(p, kind, chunk_collector, parallel, cfg);
  return p;
}

/// A planned pipeline: the plan plus, when fusion was admitted, the
/// stripped fused form (in which case the source pointer the caller
/// passed to plan_pipeline has been consumed).
struct PlannedPipeline {
  ExecutionPlan plan;
  std::unique_ptr<FusedPipeline> fused;  ///< non-null iff plan.fused
};

/// THE planning entry point: decide every admission question for the
/// pipeline rooted at `sp` — fusion (attempting the strip), DPS, drive
/// mode, grain (including auto-grain), kernel — and return the verdicts
/// as data. On fusion admission `sp` is consumed and `fused` returned;
/// otherwise `sp` is untouched and the caller runs the wrapper walk.
template <typename T>
PlannedPipeline plan_pipeline(std::unique_ptr<Spliterator<T>>& sp,
                              TerminalKind kind, bool collector_sized,
                              bool chunk_collector, bool parallel,
                              const ExecutionConfig& cfg,
                              PlanOrigin origin = PlanOrigin::kDynamic) {
  PLS_CHECK(sp != nullptr, "plan_pipeline requires a source");
  PlannedPipeline out;
  if (cfg.fusion) out.fused = fuse_pipeline<T>(sp);
  if (out.fused != nullptr) {
    out.plan = plan_fused_pipeline(*out.fused, kind, collector_sized,
                                   chunk_collector, parallel, cfg, origin);
    return out;
  }
  ExecutionPlan& p = out.plan;
  p.origin = origin;
  p.source_size = sp->estimate_size();
  p.sized = sp->has(kSized);
  p.subsized = sp->has(kSubsized);
  const auto w = output_window_of(*sp);
  p.windowed = w.has_value();
  p.power_of_two = w.has_value() && is_power_of_two(w->count);
  p.fusion_reason = !cfg.fusion ? PlanReason::kDisabledByConfig
                                : fusion_refusal_reason(*sp);
  if (kind != TerminalKind::kCollect) {
    p.dps_reason = PlanReason::kTerminalNotCollect;
  } else if (!collector_sized) {
    p.dps_reason = PlanReason::kCollectorNotSized;
  } else if (!cfg.sized_sink) {
    p.dps_reason = PlanReason::kDisabledByConfig;
  } else {
    p.dps_reason =
        dps_window_reason(sp->has(kSized | kSubsized), w, sp->estimate_size());
    if (p.dps_reason == PlanReason::kAdmitted) {
      p.dps = true;
      p.window = w;
    }
  }
  detail::finish_plan(p, kind, chunk_collector, parallel, cfg);
  return out;
}

// ---- plan recording and feedback -------------------------------------

namespace detail {
inline ExecutionPlan& last_plan_slot() {
  thread_local ExecutionPlan plan;
  return plan;
}
}  // namespace detail

/// Record `p` as the calling thread's most recent plan (done by every
/// planned entry point; readable through last_plan() for reports,
/// session::explain() and bench JSON).
inline void record_plan(const ExecutionPlan& p) {
  detail::last_plan_slot() = p;
}

/// The most recent plan recorded on this thread.
inline const ExecutionPlan& last_plan() {
  return detail::last_plan_slot();
}

// ---- continuous telemetry: run records + PlanCache gauge --------------

#if PLS_OBSERVE

/// RAII run recorder: constructed (by the terminal dispatchers) with the
/// finished plan just before execution starts, destroyed when the
/// terminal returns — including by exception unwind, so an aborted run
/// still leaves its record. The destructor turns the plan plus the
/// process-wide counter/leaf-histogram deltas and wall time into one
/// RunRecord and appends it to the RunRegistry, correlating run history
/// with pls::session::plan() through cache_key.
class RunScope {
 public:
  explicit RunScope(const ExecutionPlan& plan)
      : plan_(plan),
        counters_before_(observe::aggregate_counters()),
        leaf_before_(observe::aggregate_histograms().of(
            observe::Metric::kLeafRun)),
        start_ms_(observe::steady_now_ms()) {}

  RunScope(const RunScope&) = delete;
  RunScope& operator=(const RunScope&) = delete;

  ~RunScope() {
    observe::RunRecord rec;
    rec.cache_key = plan_.cache_key;
    rec.terminal = terminal_name(plan_.terminal);
    rec.origin = origin_name(plan_.origin);
    rec.drive = drive_name(plan_.drive);
    rec.grain_source = grain_source_name(plan_.grain_source);
    rec.kernel = kernel_name(plan_.kernel);
    rec.fusion_reason = reason_name(plan_.fusion_reason);
    rec.dps_reason = reason_name(plan_.dps_reason);
    rec.parallel = plan_.parallel;
    rec.fused = plan_.fused;
    rec.dps = plan_.dps;
    rec.parallelism = plan_.parallelism;
    rec.source_size = plan_.source_size;
    rec.grain = plan_.grain;
    rec.counters = observe::aggregate_counters() - counters_before_;
    const observe::HistogramSnapshot leaf =
        observe::aggregate_histograms().of(observe::Metric::kLeafRun) -
        leaf_before_;
    const double scale = observe::ns_per_tick();
    rec.leaf_p50_ns = leaf.quantile(0.5, scale);
    rec.leaf_p90_ns = leaf.quantile(0.9, scale);
    rec.wall_ms = observe::steady_now_ms() - start_ms_;
    observe::RunRegistry::global().append(std::move(rec));
  }

 private:
  ExecutionPlan plan_;
  observe::CounterTotals counters_before_;
  observe::HistogramSnapshot leaf_before_;
  double start_ms_;
};

namespace detail {
/// Registers the PlanCache occupancy gauge with the metrics registry once
/// per process (inline variable: one registration across all TUs). Never
/// deregistered — both singletons are function-local statics whose
/// construction this initializer orders, and collect() is never called
/// during static destruction (the sampler stops first).
[[maybe_unused]] inline const std::uint64_t plan_cache_metrics_source =
    observe::MetricsRegistry::global().add_source(
        [](observe::MetricsSample& sample) {
          sample.rows.push_back(observe::MetricRow{
              "pls_plan_cache_entries", observe::MetricKind::kGauge,
              static_cast<double>(PlanCache::global().size()), "", "",
              "Pipeline shapes held by the PlanCache"});
        });
}  // namespace detail

#else  // !PLS_OBSERVE — run recording compiles to nothing.

class RunScope {
 public:
  explicit RunScope(const ExecutionPlan&) noexcept {}
  RunScope(const RunScope&) = delete;
  RunScope& operator=(const RunScope&) = delete;
};

#endif  // PLS_OBSERVE

/// Feed one profiled parallel run back into the PlanCache — called by
/// the execution layer with the run's critical-path root (nullptr when
/// profiling is off, making this free). The next auto-grain plan for the
/// same shape consumes the updated profile: re-planned after each
/// profiled run, as adaptive execution requires.
inline void plan_feedback(const ExecutionPlan& plan,
                          const observe::CpNode* root) {
  if (root == nullptr || !plan.parallel || plan.cache_key == 0) return;
  PlanCache::global().feed(plan.cache_key, plan.source_size, plan.parallelism,
                           root);
}

}  // namespace pls::streams
