// Pipeline (intermediate-op) spliterators.
//
// Intermediate stream operations are implemented by wrapping the upstream
// spliterator: splitting a wrapper splits the upstream and re-wraps, so the
// whole lazy pipeline partitions for parallel execution exactly like the
// source does. Operation functions are held by shared_ptr because every
// split shares them.
#pragma once

#include <memory>
#include <vector>

#include "streams/plan.hpp"
#include "streams/spliterator.hpp"
#include "support/assert.hpp"

namespace pls::streams {

/// map: applies Fn(T) -> U to each element. Maps 1:1 in encounter order,
/// so it passes the upstream's destination window straight through.
template <typename U, typename T, typename Fn>
class MapSpliterator final : public Spliterator<U>,
                             public WindowedSource,
                             public FusableStage {
 public:
  using Action = typename Spliterator<U>::Action;

  MapSpliterator(std::unique_ptr<Spliterator<T>> upstream,
                 std::shared_ptr<const Fn> fn)
      : upstream_(std::move(upstream)), fn_(std::move(fn)) {
    PLS_CHECK(upstream_ != nullptr && fn_ != nullptr,
              "MapSpliterator requires upstream and function");
  }

  bool try_advance(Action action) override {
    return upstream_->try_advance(
        [&](const T& t) { action((*fn_)(t)); });
  }

  void for_each_remaining(Action action) override {
    upstream_->for_each_remaining(
        [&](const T& t) { action((*fn_)(t)); });
  }

  std::unique_ptr<Spliterator<U>> try_split() override {
    auto prefix = upstream_->try_split();
    if (!prefix) return nullptr;
    return std::make_unique<MapSpliterator<U, T, Fn>>(std::move(prefix),
                                                      fn_);
  }

  std::uint64_t estimate_size() const override {
    return upstream_->estimate_size();
  }

  Characteristics characteristics() const override {
    // Mapping preserves size and order but not sortedness/distinctness.
    return upstream_->characteristics() & ~(kSorted | kDistinct);
  }

  std::optional<OutputWindow> try_output_window() const override {
    return output_window_of(*upstream_);
  }

  std::unique_ptr<FusedPipeline> strip_into_fused() override {
    auto fused = fuse_pipeline<T>(upstream_);
    if (fused != nullptr) {
      fused->append_stage(std::make_shared<MapStage<U, T, Fn>>(fn_));
    }
    return fused;
  }

 private:
  std::unique_ptr<Spliterator<T>> upstream_;
  std::shared_ptr<const Fn> fn_;
};

/// filter: keeps elements satisfying Pred(T) -> bool.
template <typename T, typename Pred>
class FilterSpliterator final : public Spliterator<T>, public FusableStage {
 public:
  using Action = typename Spliterator<T>::Action;

  FilterSpliterator(std::unique_ptr<Spliterator<T>> upstream,
                    std::shared_ptr<const Pred> pred)
      : upstream_(std::move(upstream)), pred_(std::move(pred)) {
    PLS_CHECK(upstream_ != nullptr && pred_ != nullptr,
              "FilterSpliterator requires upstream and predicate");
  }

  bool try_advance(Action action) override {
    bool delivered = false;
    while (!delivered) {
      const bool advanced = upstream_->try_advance([&](const T& t) {
        if ((*pred_)(t)) {
          action(t);
          delivered = true;
        }
      });
      if (!advanced) return false;
    }
    return true;
  }

  void for_each_remaining(Action action) override {
    upstream_->for_each_remaining([&](const T& t) {
      if ((*pred_)(t)) action(t);
    });
  }

  std::unique_ptr<Spliterator<T>> try_split() override {
    auto prefix = upstream_->try_split();
    if (!prefix) return nullptr;
    return std::make_unique<FilterSpliterator<T, Pred>>(std::move(prefix),
                                                        pred_);
  }

  std::uint64_t estimate_size() const override {
    // An upper-bound estimate: filtering loses SIZED (below) but the
    // estimate still guides split depth.
    return upstream_->estimate_size();
  }

  Characteristics characteristics() const override {
    return upstream_->characteristics() &
           ~(kSized | kSubsized | kPower2);
  }

  std::unique_ptr<FusedPipeline> strip_into_fused() override {
    auto fused = fuse_pipeline<T>(upstream_);
    if (fused != nullptr) {
      fused->append_stage(std::make_shared<FilterStage<T, Pred>>(pred_));
    }
    return fused;
  }

 private:
  std::unique_ptr<Spliterator<T>> upstream_;
  std::shared_ptr<const Pred> pred_;
};

/// peek: invokes a side-effecting observer, passes elements through
/// (including the upstream's destination window).
template <typename T, typename Fn>
class PeekSpliterator final : public Spliterator<T>,
                              public WindowedSource,
                              public FusableStage {
 public:
  using Action = typename Spliterator<T>::Action;

  PeekSpliterator(std::unique_ptr<Spliterator<T>> upstream,
                  std::shared_ptr<const Fn> observer)
      : upstream_(std::move(upstream)), observer_(std::move(observer)) {
    PLS_CHECK(upstream_ != nullptr && observer_ != nullptr,
              "PeekSpliterator requires upstream and observer");
  }

  bool try_advance(Action action) override {
    return upstream_->try_advance([&](const T& t) {
      (*observer_)(t);
      action(t);
    });
  }

  void for_each_remaining(Action action) override {
    upstream_->for_each_remaining([&](const T& t) {
      (*observer_)(t);
      action(t);
    });
  }

  std::unique_ptr<Spliterator<T>> try_split() override {
    auto prefix = upstream_->try_split();
    if (!prefix) return nullptr;
    return std::make_unique<PeekSpliterator<T, Fn>>(std::move(prefix),
                                                    observer_);
  }

  std::uint64_t estimate_size() const override {
    return upstream_->estimate_size();
  }

  Characteristics characteristics() const override {
    return upstream_->characteristics();
  }

  std::optional<OutputWindow> try_output_window() const override {
    return output_window_of(*upstream_);
  }

  std::unique_ptr<FusedPipeline> strip_into_fused() override {
    auto fused = fuse_pipeline<T>(upstream_);
    if (fused != nullptr) {
      fused->append_stage(std::make_shared<PeekStage<T, Fn>>(observer_));
    }
    return fused;
  }

 private:
  std::unique_ptr<Spliterator<T>> upstream_;
  std::shared_ptr<const Fn> observer_;
};

/// flat_map: Fn(T) -> std::vector<U>, concatenating the results.
template <typename U, typename T, typename Fn>
class FlatMapSpliterator final : public Spliterator<U> {
 public:
  using Action = typename Spliterator<U>::Action;

  FlatMapSpliterator(std::unique_ptr<Spliterator<T>> upstream,
                     std::shared_ptr<const Fn> fn)
      : upstream_(std::move(upstream)), fn_(std::move(fn)) {
    PLS_CHECK(upstream_ != nullptr && fn_ != nullptr,
              "FlatMapSpliterator requires upstream and function");
  }

  bool try_advance(Action action) override {
    while (cursor_ >= buffer_.size()) {
      buffer_.clear();
      cursor_ = 0;
      const bool advanced = upstream_->try_advance(
          [&](const T& t) { buffer_ = (*fn_)(t); });
      if (!advanced) return false;
    }
    action(buffer_[cursor_++]);
    return true;
  }

  void for_each_remaining(Action action) override {
    for (; cursor_ < buffer_.size(); ++cursor_) action(buffer_[cursor_]);
    upstream_->for_each_remaining([&](const T& t) {
      for (const U& u : (*fn_)(t)) action(u);
    });
  }

  std::unique_ptr<Spliterator<U>> try_split() override {
    // A partially consumed buffer precedes the remaining upstream in
    // encounter order, so splitting then would misorder; refuse (splits
    // happen before traversal in pipeline evaluation anyway).
    if (cursor_ < buffer_.size()) return nullptr;
    auto prefix = upstream_->try_split();
    if (!prefix) return nullptr;
    return std::make_unique<FlatMapSpliterator<U, T, Fn>>(std::move(prefix),
                                                          fn_);
  }

  std::uint64_t estimate_size() const override {
    return upstream_->estimate_size();  // lower bound in general
  }

  Characteristics characteristics() const override {
    return upstream_->characteristics() &
           ~(kSized | kSubsized | kSorted | kDistinct | kPower2);
  }

 private:
  std::unique_ptr<Spliterator<T>> upstream_;
  std::shared_ptr<const Fn> fn_;
  std::vector<U> buffer_;
  std::size_t cursor_ = 0;
};

}  // namespace pls::streams
