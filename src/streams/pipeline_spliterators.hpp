// Pipeline (intermediate-op) spliterators.
//
// Intermediate stream operations are implemented by wrapping the upstream
// spliterator: splitting a wrapper splits the upstream and re-wraps, so the
// whole lazy pipeline partitions for parallel execution exactly like the
// source does. Operation functions are held by shared_ptr because every
// split shares them.
#pragma once

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "streams/plan.hpp"
#include "streams/spliterator.hpp"
#include "streams/spliterators.hpp"
#include "support/assert.hpp"

namespace pls::streams {

/// map: applies Fn(T) -> U to each element. Maps 1:1 in encounter order,
/// so it passes the upstream's destination window straight through.
template <typename U, typename T, typename Fn>
class MapSpliterator final : public Spliterator<U>,
                             public WindowedSource,
                             public FusableStage {
 public:
  using Action = typename Spliterator<U>::Action;

  MapSpliterator(std::unique_ptr<Spliterator<T>> upstream,
                 std::shared_ptr<const Fn> fn)
      : upstream_(std::move(upstream)), fn_(std::move(fn)) {
    PLS_CHECK(upstream_ != nullptr && fn_ != nullptr,
              "MapSpliterator requires upstream and function");
  }

  bool try_advance(Action action) override {
    return upstream_->try_advance(
        [&](const T& t) { action((*fn_)(t)); });
  }

  void for_each_remaining(Action action) override {
    upstream_->for_each_remaining(
        [&](const T& t) { action((*fn_)(t)); });
  }

  std::unique_ptr<Spliterator<U>> try_split() override {
    auto prefix = upstream_->try_split();
    if (!prefix) return nullptr;
    return std::make_unique<MapSpliterator<U, T, Fn>>(std::move(prefix),
                                                      fn_);
  }

  std::uint64_t estimate_size() const override {
    return upstream_->estimate_size();
  }

  Characteristics characteristics() const override {
    // Mapping preserves size and order but not sortedness/distinctness.
    return upstream_->characteristics() & ~(kSorted | kDistinct);
  }

  std::optional<OutputWindow> try_output_window() const override {
    return output_window_of(*upstream_);
  }

  std::unique_ptr<FusedPipeline> strip_into_fused() override {
    auto fused = fuse_pipeline<T>(upstream_);
    if (fused != nullptr) {
      fused->append_stage(std::make_shared<MapStage<U, T, Fn>>(fn_));
    }
    return fused;
  }

 private:
  std::unique_ptr<Spliterator<T>> upstream_;
  std::shared_ptr<const Fn> fn_;
};

/// filter: keeps elements satisfying Pred(T) -> bool.
template <typename T, typename Pred>
class FilterSpliterator final : public Spliterator<T>, public FusableStage {
 public:
  using Action = typename Spliterator<T>::Action;

  FilterSpliterator(std::unique_ptr<Spliterator<T>> upstream,
                    std::shared_ptr<const Pred> pred)
      : upstream_(std::move(upstream)), pred_(std::move(pred)) {
    PLS_CHECK(upstream_ != nullptr && pred_ != nullptr,
              "FilterSpliterator requires upstream and predicate");
  }

  bool try_advance(Action action) override {
    bool delivered = false;
    while (!delivered) {
      const bool advanced = upstream_->try_advance([&](const T& t) {
        if ((*pred_)(t)) {
          action(t);
          delivered = true;
        }
      });
      if (!advanced) return false;
    }
    return true;
  }

  void for_each_remaining(Action action) override {
    upstream_->for_each_remaining([&](const T& t) {
      if ((*pred_)(t)) action(t);
    });
  }

  std::unique_ptr<Spliterator<T>> try_split() override {
    auto prefix = upstream_->try_split();
    if (!prefix) return nullptr;
    return std::make_unique<FilterSpliterator<T, Pred>>(std::move(prefix),
                                                        pred_);
  }

  std::uint64_t estimate_size() const override {
    // An upper-bound estimate: filtering loses SIZED (below) but the
    // estimate still guides split depth.
    return upstream_->estimate_size();
  }

  Characteristics characteristics() const override {
    return upstream_->characteristics() &
           ~(kSized | kSubsized | kPower2);
  }

  std::unique_ptr<FusedPipeline> strip_into_fused() override {
    auto fused = fuse_pipeline<T>(upstream_);
    if (fused != nullptr) {
      fused->append_stage(std::make_shared<FilterStage<T, Pred>>(pred_));
    }
    return fused;
  }

 private:
  std::unique_ptr<Spliterator<T>> upstream_;
  std::shared_ptr<const Pred> pred_;
};

/// peek: invokes a side-effecting observer, passes elements through
/// (including the upstream's destination window).
template <typename T, typename Fn>
class PeekSpliterator final : public Spliterator<T>,
                              public WindowedSource,
                              public FusableStage {
 public:
  using Action = typename Spliterator<T>::Action;

  PeekSpliterator(std::unique_ptr<Spliterator<T>> upstream,
                  std::shared_ptr<const Fn> observer)
      : upstream_(std::move(upstream)), observer_(std::move(observer)) {
    PLS_CHECK(upstream_ != nullptr && observer_ != nullptr,
              "PeekSpliterator requires upstream and observer");
  }

  bool try_advance(Action action) override {
    return upstream_->try_advance([&](const T& t) {
      (*observer_)(t);
      action(t);
    });
  }

  void for_each_remaining(Action action) override {
    upstream_->for_each_remaining([&](const T& t) {
      (*observer_)(t);
      action(t);
    });
  }

  std::unique_ptr<Spliterator<T>> try_split() override {
    auto prefix = upstream_->try_split();
    if (!prefix) return nullptr;
    return std::make_unique<PeekSpliterator<T, Fn>>(std::move(prefix),
                                                    observer_);
  }

  std::uint64_t estimate_size() const override {
    return upstream_->estimate_size();
  }

  Characteristics characteristics() const override {
    return upstream_->characteristics();
  }

  std::optional<OutputWindow> try_output_window() const override {
    return output_window_of(*upstream_);
  }

  std::unique_ptr<FusedPipeline> strip_into_fused() override {
    auto fused = fuse_pipeline<T>(upstream_);
    if (fused != nullptr) {
      fused->append_stage(std::make_shared<PeekStage<T, Fn>>(observer_));
    }
    return fused;
  }

 private:
  std::unique_ptr<Spliterator<T>> upstream_;
  std::shared_ptr<const Fn> observer_;
};

/// flat_map: Fn(T) -> std::vector<U>, concatenating the results. Fuses
/// into a FlatMapSink — the mapMulti-style multi-accept expansion — as
/// long as no expansion is mid-flight in the pull buffer.
template <typename U, typename T, typename Fn>
class FlatMapSpliterator final : public Spliterator<U>, public FusableStage {
 public:
  using Action = typename Spliterator<U>::Action;

  FlatMapSpliterator(std::unique_ptr<Spliterator<T>> upstream,
                     std::shared_ptr<const Fn> fn)
      : upstream_(std::move(upstream)), fn_(std::move(fn)) {
    PLS_CHECK(upstream_ != nullptr && fn_ != nullptr,
              "FlatMapSpliterator requires upstream and function");
  }

  bool try_advance(Action action) override {
    while (cursor_ >= buffer_.size()) {
      buffer_.clear();
      cursor_ = 0;
      const bool advanced = upstream_->try_advance(
          [&](const T& t) { buffer_ = (*fn_)(t); });
      if (!advanced) return false;
    }
    action(buffer_[cursor_++]);
    return true;
  }

  void for_each_remaining(Action action) override {
    for (; cursor_ < buffer_.size(); ++cursor_) action(buffer_[cursor_]);
    upstream_->for_each_remaining([&](const T& t) {
      for (const U& u : (*fn_)(t)) action(u);
    });
  }

  std::unique_ptr<Spliterator<U>> try_split() override {
    // A partially consumed buffer precedes the remaining upstream in
    // encounter order, so splitting then would misorder; refuse (splits
    // happen before traversal in pipeline evaluation anyway).
    if (cursor_ < buffer_.size()) return nullptr;
    auto prefix = upstream_->try_split();
    if (!prefix) return nullptr;
    return std::make_unique<FlatMapSpliterator<U, T, Fn>>(std::move(prefix),
                                                          fn_);
  }

  std::uint64_t estimate_size() const override {
    return upstream_->estimate_size();  // lower bound in general
  }

  Characteristics characteristics() const override {
    return upstream_->characteristics() &
           ~(kSized | kSubsized | kSorted | kDistinct | kPower2);
  }

  std::unique_ptr<FusedPipeline> strip_into_fused() override {
    // Elements already expanded into the pull buffer precede the
    // remaining upstream in encounter order; a fresh sink chain would
    // drop them, so refuse (terminals strip before traversal anyway).
    if (cursor_ < buffer_.size()) return nullptr;
    auto fused = fuse_pipeline<T>(upstream_);
    if (fused != nullptr) {
      fused->append_stage(std::make_shared<FlatMapStage<U, T, Fn>>(fn_));
    }
    return fused;
  }

 private:
  std::unique_ptr<Spliterator<T>> upstream_;
  std::shared_ptr<const Fn> fn_;
  std::vector<U> buffer_;
  std::size_t cursor_ = 0;
};

/// distinct: hash-dedup keeping first occurrences in encounter order.
/// Stateful — the seen-set spans the traversal — so it refuses to split
/// and its fused form admits only the single-leaf drive
/// (PlanReason::kChainStateful).
template <typename T>
class DistinctSpliterator final : public Spliterator<T>, public FusableStage {
 public:
  using Action = typename Spliterator<T>::Action;

  explicit DistinctSpliterator(std::unique_ptr<Spliterator<T>> upstream)
      : upstream_(std::move(upstream)) {
    PLS_CHECK(upstream_ != nullptr, "DistinctSpliterator requires upstream");
  }

  bool try_advance(Action action) override {
    bool delivered = false;
    while (!delivered) {
      const bool advanced = upstream_->try_advance([&](const T& t) {
        if (seen_.insert(t).second) {
          action(t);
          delivered = true;
        }
      });
      if (!advanced) return false;
    }
    return true;
  }

  void for_each_remaining(Action action) override {
    upstream_->for_each_remaining([&](const T& t) {
      if (seen_.insert(t).second) action(t);
    });
  }

  std::unique_ptr<Spliterator<T>> try_split() override { return nullptr; }

  std::uint64_t estimate_size() const override {
    return upstream_->estimate_size();  // upper bound
  }

  Characteristics characteristics() const override {
    return (upstream_->characteristics() & ~(kSized | kSubsized | kPower2)) |
           kDistinct;
  }

  std::unique_ptr<FusedPipeline> strip_into_fused() override {
    auto fused = fuse_pipeline<T>(upstream_);
    if (fused != nullptr) {
      fused->append_stage(std::make_shared<DistinctStage<T>>());
    }
    return fused;
  }

 private:
  std::unique_ptr<Spliterator<T>> upstream_;
  std::unordered_set<T> seen_;
};

/// sorted: buffers the whole upstream at first need, sorts it, and then
/// behaves as an array spliterator over the buffer — Java's full-barrier
/// stateful op. The buffer point restarts fusion: strip_into_fused()
/// materialises and re-enters fuse_pipeline on the buffer as a fresh
/// windowed SIZED|SUBSIZED source, so every stage *downstream* of sorted
/// still fuses (the stripped chain's source_size is the buffer count).
template <typename T, typename Cmp>
class SortedSpliterator final : public Spliterator<T>,
                                public WindowedSource,
                                public FusableStage {
 public:
  using Action = typename Spliterator<T>::Action;

  SortedSpliterator(std::unique_ptr<Spliterator<T>> upstream, Cmp cmp)
      : upstream_(std::move(upstream)), cmp_(std::move(cmp)) {
    PLS_CHECK(upstream_ != nullptr, "SortedSpliterator requires upstream");
  }

  bool try_advance(Action action) override {
    ensure_buffered();
    return inner_->try_advance(action);
  }

  void for_each_remaining(Action action) override {
    ensure_buffered();
    inner_->for_each_remaining(action);
  }

  std::pair<const T*, std::size_t> try_contiguous_chunk(
      std::size_t max_n) override {
    ensure_buffered();
    return inner_->try_contiguous_chunk(max_n);
  }

  std::unique_ptr<Spliterator<T>> try_split() override {
    ensure_buffered();
    return inner_->try_split();
  }

  std::uint64_t estimate_size() const override {
    // Probes buffer eagerly: sorted is a full barrier regardless, and the
    // buffer recovers exact sizing even when upstream obscured it — the
    // planner must see the same shape the drive will.
    ensure_buffered();
    return inner_->estimate_size();
  }

  Characteristics characteristics() const override {
    ensure_buffered();
    return inner_->characteristics() | kSorted;
  }

  std::optional<OutputWindow> try_output_window() const override {
    // Only the materialised buffer can name destination positions; the
    // unsorted upstream's window would misplace every element.
    ensure_buffered();
    return output_window_of(*inner_);
  }

  std::unique_ptr<FusedPipeline> strip_into_fused() override {
    // Materialise, then restart the fusion walk on the buffer: a fresh
    // array source always admits, so sorted never blocks its downstream
    // from fusing.
    ensure_buffered();
    return fuse_pipeline<T>(inner_);
  }

 private:
  // Logically const: every observation of this spliterator goes through
  // the buffer, so materialising it early never changes what callers see.
  void ensure_buffered() const {
    if (inner_) return;
    auto values = std::make_shared<std::vector<T>>();
    upstream_->for_each_remaining([&](const T& v) { values->push_back(v); });
    std::sort(values->begin(), values->end(), cmp_);
    inner_ = std::make_unique<ArraySpliterator<T>>(
        std::shared_ptr<const std::vector<T>>(std::move(values)));
    upstream_.reset();
  }

  mutable std::unique_ptr<Spliterator<T>> upstream_;
  Cmp cmp_;
  // Spliterator-typed (not ArraySpliterator) so strip_into_fused can hand
  // it straight to fuse_pipeline.
  mutable std::unique_ptr<Spliterator<T>> inner_;
};

}  // namespace pls::streams
