// Sink<T>: the push-mode consumer protocol of the fusion engine
// (mirrors java.util.stream.Sink).
//
// The wrapper-spliterator pipeline (streams/pipeline_spliterators.hpp)
// evaluates pull-mode: every terminal traversal pays one indirect
// try_advance / action hop per stage per element. Java's real engine never
// does that — AbstractPipeline composes all intermediate ops into one Sink
// chain per leaf (opWrapSink) and runs a single tight loop. This header is
// that protocol: a Sink accepts a begin(size) / accept(value)* / end()
// conversation, and can ask for early termination through
// cancellation_requested() (how limit/takeWhile short-circuit upstream).
//
// Two transports:
//  - accept(v): one element, one virtual call — the type-erased fallback,
//    and the only transport for cancelling (short-circuit) chains, whose
//    per-element cancellation checks must observe exactly the same
//    source-consumption depth as the wrapper path.
//  - accept_chunk(p, n): a whole batch per virtual call. Stage sinks
//    override it with an inlined loop over their concrete operator
//    (MapSink applies Fn in a tight scratch loop, PeekSink forwards the
//    same pointer), so a statically-known chain moves elements with zero
//    per-element virtual hops between stages.
//
// Stage sinks hold their downstream by reference: a sink chain is composed
// per leaf, used for one traversal, and destroyed (streams/fusion.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <type_traits>
#include <unordered_set>
#include <vector>

namespace pls::streams {

/// begin() size argument when the upstream element count is unknown
/// (a filter or takeWhile stage upstream obscures it).
inline constexpr std::uint64_t kUnknownSinkSize = ~std::uint64_t{0};

/// Batch size of the chunked transport: large enough to amortise the one
/// virtual accept_chunk per stage, small enough that per-stage scratch
/// buffers stay cache-resident.
inline constexpr std::size_t kFusionChunk = 1024;

/// The element-type-independent face of a sink: traversal lifecycle and
/// cancellation. Stage descriptors compose sink chains through this base
/// (streams/fusion.hpp) so the chain can cross element-type changes.
class SinkControl {
 public:
  virtual ~SinkControl() = default;

  /// Called once before any elements; `size` is the exact element count
  /// when known, kUnknownSinkSize otherwise. Stages forward it downstream,
  /// adjusted by what they do to cardinality.
  virtual void begin(std::uint64_t size) { (void)size; }

  /// Called once after the last element (also after a cancelled
  /// traversal).
  virtual void end() {}

  /// True when this sink (or any downstream of it) wants no further
  /// elements — the short-circuit signal of limit / take_while. Drivers
  /// check it between elements on cancelling chains.
  virtual bool cancellation_requested() const { return false; }
};

/// A consumer of T values. accept() is the mandatory per-element entry;
/// accept_chunk() defaults to an accept loop and is overridden by every
/// stage sink with a batch loop over its concrete operator.
template <typename T>
class Sink : public SinkControl {
 public:
  using value_type = T;

  virtual void accept(const T& value) = 0;

  virtual void accept_chunk(const T* values, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) accept(values[i]);
  }
};

// ---- stage sinks -----------------------------------------------------
//
// One class per intermediate operation, templated on the concrete
// operator type so the chunk loops inline it. Each holds the shared
// operator (the same shared_ptr the wrapper spliterators split with) and
// the downstream sink by reference.

/// map: applies Fn(In) -> Out. Chunk mode maps into a scratch buffer and
/// pushes whole Out-chunks downstream; falls back to per-element accept
/// when Out cannot live in a vector (not move-constructible).
template <typename In, typename Out, typename Fn>
class MapSink final : public Sink<In> {
  static constexpr bool kBatched = std::is_move_constructible_v<Out>;

 public:
  MapSink(std::shared_ptr<const Fn> fn, Sink<Out>& down)
      : fn_(std::move(fn)), down_(down) {
    // Size the scratch once at construction: re-checking capacity on every
    // accept_chunk call put a branch (and a cold reserve path) in front of
    // each batch.
    if constexpr (kBatched) scratch_.reserve(kFusionChunk);
  }

  void begin(std::uint64_t size) override { down_.begin(size); }
  void end() override { down_.end(); }
  bool cancellation_requested() const override {
    return down_.cancellation_requested();
  }

  void accept(const In& value) override { down_.accept((*fn_)(value)); }

  void accept_chunk(const In* values, std::size_t n) override {
    if constexpr (kBatched) {
      while (n > 0) {
        const std::size_t m = n < kFusionChunk ? n : kFusionChunk;
        scratch_.clear();
        for (std::size_t i = 0; i < m; ++i)
          scratch_.push_back((*fn_)(values[i]));
        down_.accept_chunk(scratch_.data(), m);
        values += m;
        n -= m;
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) accept(values[i]);
    }
  }

 private:
  std::shared_ptr<const Fn> fn_;
  Sink<Out>& down_;
  std::vector<Out> scratch_;
};

/// filter: forwards elements satisfying Pred. Chunk mode compacts the
/// kept elements into a scratch buffer; the downstream element count
/// becomes unknown, so begin() forwards kUnknownSinkSize.
template <typename T, typename Pred>
class FilterSink final : public Sink<T> {
  static constexpr bool kBatched = std::is_copy_constructible_v<T>;

 public:
  FilterSink(std::shared_ptr<const Pred> pred, Sink<T>& down)
      : pred_(std::move(pred)), down_(down) {
    if constexpr (kBatched) scratch_.reserve(kFusionChunk);
  }

  void begin(std::uint64_t) override { down_.begin(kUnknownSinkSize); }
  void end() override { down_.end(); }
  bool cancellation_requested() const override {
    return down_.cancellation_requested();
  }

  void accept(const T& value) override {
    if ((*pred_)(value)) down_.accept(value);
  }

  void accept_chunk(const T* values, std::size_t n) override {
    if constexpr (kBatched) {
      while (n > 0) {
        const std::size_t m = n < kFusionChunk ? n : kFusionChunk;
        scratch_.clear();
        for (std::size_t i = 0; i < m; ++i) {
          if ((*pred_)(values[i])) scratch_.push_back(values[i]);
        }
        if (!scratch_.empty())
          down_.accept_chunk(scratch_.data(), scratch_.size());
        values += m;
        n -= m;
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) accept(values[i]);
    }
  }

 private:
  std::shared_ptr<const Pred> pred_;
  Sink<T>& down_;
  std::vector<T> scratch_;
};

/// peek: observes and forwards. Chunk mode forwards the *same* pointer —
/// zero copies, zero per-element hops beyond the observer itself.
template <typename T, typename Fn>
class PeekSink final : public Sink<T> {
 public:
  PeekSink(std::shared_ptr<const Fn> observer, Sink<T>& down)
      : observer_(std::move(observer)), down_(down) {}

  void begin(std::uint64_t size) override { down_.begin(size); }
  void end() override { down_.end(); }
  bool cancellation_requested() const override {
    return down_.cancellation_requested();
  }

  void accept(const T& value) override {
    (*observer_)(value);
    down_.accept(value);
  }

  void accept_chunk(const T* values, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) (*observer_)(values[i]);
    down_.accept_chunk(values, n);
  }

 private:
  std::shared_ptr<const Fn> observer_;
  Sink<T>& down_;
};

/// flat_map: the mapMulti-style multi-accept expansion. Fn(In) returns a
/// container of Out; every expansion element is forwarded downstream in
/// encounter order. Element mode pushes each expansion element as it is
/// produced — on cancelling chains the whole expansion of the current
/// source element is offered before the driver re-checks cancellation,
/// matching the wrapper's buffer-one-expansion-at-a-time consumption
/// depth exactly. Chunk mode gathers expansions into a scratch buffer
/// flushed in >= kFusionChunk batches; the downstream element count is
/// unknowable, so begin() forwards kUnknownSinkSize.
template <typename In, typename Out, typename Fn>
class FlatMapSink final : public Sink<In> {
  static constexpr bool kBatched = std::is_move_constructible_v<Out>;

 public:
  FlatMapSink(std::shared_ptr<const Fn> fn, Sink<Out>& down)
      : fn_(std::move(fn)), down_(down) {
    if constexpr (kBatched) scratch_.reserve(kFusionChunk);
  }

  void begin(std::uint64_t) override { down_.begin(kUnknownSinkSize); }
  void end() override { down_.end(); }
  bool cancellation_requested() const override {
    return down_.cancellation_requested();
  }

  void accept(const In& value) override {
    for (const Out& out : (*fn_)(value)) down_.accept(out);
  }

  void accept_chunk(const In* values, std::size_t n) override {
    if constexpr (kBatched) {
      for (std::size_t i = 0; i < n; ++i) {
        auto expansion = (*fn_)(values[i]);
        scratch_.insert(scratch_.end(),
                        std::make_move_iterator(expansion.begin()),
                        std::make_move_iterator(expansion.end()));
        // Flush on overflow, not exactly at kFusionChunk: an expansion is
        // never split across two downstream batches, so downstream chunk
        // loops may see slightly larger batches (they re-chunk anyway).
        if (scratch_.size() >= kFusionChunk) flush();
      }
      flush();
    } else {
      for (std::size_t i = 0; i < n; ++i) accept(values[i]);
    }
  }

 private:
  void flush() {
    if (scratch_.empty()) return;
    down_.accept_chunk(scratch_.data(), scratch_.size());
    scratch_.clear();
  }

  std::shared_ptr<const Fn> fn_;
  Sink<Out>& down_;
  std::vector<Out> scratch_;
};

/// distinct: hash-dedup keeping the first occurrence in encounter order —
/// identical semantics to the wrapper's keep-first set walk. Stateful:
/// the seen-set spans the whole traversal, so a chain containing this
/// sink must be driven by exactly one leaf (the planner refuses to split
/// it; see StageNode::stateful in streams/fusion.hpp). Chunk mode
/// compacts the first occurrences like FilterSink.
template <typename T>
class DistinctSink final : public Sink<T> {
  static constexpr bool kBatched = std::is_copy_constructible_v<T>;

 public:
  explicit DistinctSink(Sink<T>& down) : down_(down) {
    if constexpr (kBatched) scratch_.reserve(kFusionChunk);
  }

  void begin(std::uint64_t) override { down_.begin(kUnknownSinkSize); }
  void end() override { down_.end(); }
  bool cancellation_requested() const override {
    return down_.cancellation_requested();
  }

  void accept(const T& value) override {
    if (seen_.insert(value).second) down_.accept(value);
  }

  void accept_chunk(const T* values, std::size_t n) override {
    if constexpr (kBatched) {
      while (n > 0) {
        const std::size_t m = n < kFusionChunk ? n : kFusionChunk;
        scratch_.clear();
        for (std::size_t i = 0; i < m; ++i) {
          if (seen_.insert(values[i]).second) scratch_.push_back(values[i]);
        }
        if (!scratch_.empty())
          down_.accept_chunk(scratch_.data(), scratch_.size());
        values += m;
        n -= m;
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) accept(values[i]);
    }
  }

 private:
  Sink<T>& down_;
  std::unordered_set<T> seen_;
  std::vector<T> scratch_;
};

/// skip + limit (the SliceSpliterator pair). A cancelling stage: once the
/// limit is exhausted it requests cancellation, and the element-mode
/// driver stops pulling the source — the same consumption depth as the
/// wrapper (skip + limit elements, never more). Cancelling chains always
/// run element-mode, so the inherited accept_chunk is never hot.
template <typename T>
class SliceSink final : public Sink<T> {
 public:
  SliceSink(std::uint64_t skip, std::uint64_t limit, Sink<T>& down)
      : skip_(skip), limit_(limit), down_(down) {}

  void begin(std::uint64_t size) override {
    if (size == kUnknownSinkSize) {
      down_.begin(kUnknownSinkSize);
      return;
    }
    const std::uint64_t after_skip = size > skip_ ? size - skip_ : 0;
    down_.begin(after_skip < limit_ ? after_skip : limit_);
  }
  void end() override { down_.end(); }
  bool cancellation_requested() const override {
    return limit_ == 0 || down_.cancellation_requested();
  }

  void accept(const T& value) override {
    if (skip_ > 0) {
      --skip_;
      return;
    }
    if (limit_ == 0) return;
    --limit_;
    down_.accept(value);
  }

 private:
  std::uint64_t skip_;
  std::uint64_t limit_;
  Sink<T>& down_;
};

/// take_while: forwards the longest satisfying prefix, then cancels. Like
/// the wrapper, the first failing element is consumed from the source
/// (it must be examined) but not forwarded.
template <typename T, typename Pred>
class TakeWhileSink final : public Sink<T> {
 public:
  TakeWhileSink(std::shared_ptr<const Pred> pred, Sink<T>& down)
      : pred_(std::move(pred)), down_(down) {}

  void begin(std::uint64_t) override { down_.begin(kUnknownSinkSize); }
  void end() override { down_.end(); }
  bool cancellation_requested() const override {
    return done_ || down_.cancellation_requested();
  }

  void accept(const T& value) override {
    if (done_) return;
    if ((*pred_)(value)) {
      down_.accept(value);
    } else {
      done_ = true;
    }
  }

 private:
  std::shared_ptr<const Pred> pred_;
  Sink<T>& down_;
  bool done_ = false;
};

}  // namespace pls::streams
