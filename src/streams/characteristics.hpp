// Spliterator characteristics flags (mirrors java.util.Spliterator).
//
// Characteristics let the pipeline evaluator pick strategies: SIZED sources
// can be partitioned by exact size, SUBSIZED guarantees splits stay sized,
// and the POWER2 extension — introduced by the paper — marks sources whose
// element count is a power of two, the admission condition for PowerList
// functions.
#pragma once

#include <cstdint>

namespace pls::streams {

using Characteristics = std::uint32_t;

/// Encounter order is defined and meaningful.
inline constexpr Characteristics kOrdered = 0x0001;
/// All elements are distinct.
inline constexpr Characteristics kDistinct = 0x0002;
/// Elements appear in sorted order.
inline constexpr Characteristics kSorted = 0x0004;
/// estimate_size() is the exact element count.
inline constexpr Characteristics kSized = 0x0008;
/// The source cannot be structurally modified during traversal.
inline constexpr Characteristics kImmutable = 0x0010;
/// Splits of a SIZED spliterator are themselves SIZED.
inline constexpr Characteristics kSubsized = 0x0020;
/// Extension (Section IV-A of the paper): the element count is a power of
/// two, so tie/zip decompositions are well defined all the way down.
inline constexpr Characteristics kPower2 = 0x0100;

inline constexpr bool has_characteristics(Characteristics set,
                                          Characteristics wanted) {
  return (set & wanted) == wanted;
}

}  // namespace pls::streams
