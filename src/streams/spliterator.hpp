// Spliterator<T>: the traversal-and-partitioning abstraction of the
// streams library (mirrors java.util.Spliterator).
//
// A spliterator walks the elements of a source (try_advance /
// for_each_remaining) and can partition itself (try_split) for parallel
// processing: try_split carves off a *prefix* of the remaining elements as
// a new spliterator, leaving this one with the suffix — exactly Java's
// contract, which the PowerList TieSpliterator and ZipSpliterator
// specialise (see src/powerlist/spliterators.hpp).
//
// The interface is virtual by design: the paper's central mechanism is a
// Collector-owned spliterator subclass that performs extra work during the
// splitting phase and mutates shared collector state; that requires runtime
// polymorphism, as in Java. Hot paths traverse whole chunks through
// for_each_remaining, so dispatch cost is per-chunk, not per-element.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "streams/characteristics.hpp"
#include "support/function_ref.hpp"

namespace pls::streams {

/// A strided destination window: element j of a chunk (in the chunk's
/// encounter order) belongs at result position start + j * incr. Windows
/// are reported in the coordinates of the *source* spliterator's own
/// window; the destination-passing evaluator rebases them against the
/// root's window before writing (streams/parallel_eval.hpp).
struct OutputWindow {
  std::uint64_t start = 0;
  std::uint64_t incr = 1;
  std::uint64_t count = 0;
};

/// Mixin interface for spliterators that can name where their elements
/// land in the final result — the enabling contract of the
/// destination-passing collect (docs/execution.md). A SIZED|SUBSIZED
/// windowed spliterator must produce windowed split products whose windows
/// partition the parent's: tie splits hand the prefix the first half of
/// the window (same stride), zip splits hand it the even positions
/// (stride doubled), exactly mirroring how SpliteratorPower2 transforms
/// its (start, incr, count) triple. Wrappers that merely map values 1:1
/// (e.g. MapSpliterator) delegate to their upstream; sources that cannot
/// name a window return nullopt and collect through the legacy
/// supplier/combiner path.
class WindowedSource {
 public:
  virtual ~WindowedSource() = default;

  /// This spliterator's current destination window, or nullopt when the
  /// source cannot provide one (e.g. a wrapper over a non-windowed
  /// upstream).
  virtual std::optional<OutputWindow> try_output_window() const = 0;
};

template <typename T>
class Spliterator {
 public:
  using value_type = T;
  /// Per-element action. Non-owning: actions never outlive the call.
  using Action = pls::function_ref<void(const T&)>;

  virtual ~Spliterator() = default;

  /// If an element remains, invoke `action` on it and return true;
  /// otherwise return false.
  virtual bool try_advance(Action action) = 0;

  /// Invoke `action` on every remaining element, sequentially, in
  /// encounter order. Override for bulk traversal (and, per Section V of
  /// the paper, to specialise the *basic case* computation applied to the
  /// sublists where parallel decomposition stopped).
  virtual void for_each_remaining(Action action) {
    while (try_advance(action)) {
    }
  }

  /// Bulk-pull hook for the fused evaluator (streams/fusion.hpp): when
  /// the remaining elements live contiguously in memory, return a pointer
  /// to the next min(max_n, remaining) of them and mark those consumed;
  /// return {nullptr, 0} otherwise (the default). Lets a fused leaf feed
  /// an array source's own storage straight into the sink chain with zero
  /// copies and zero per-element calls at the source seam.
  virtual std::pair<const T*, std::size_t> try_contiguous_chunk(
      std::size_t max_n) {
    (void)max_n;
    return {nullptr, 0};
  }

  /// Partition off a prefix of the remaining elements as a new
  /// spliterator, or return nullptr when this spliterator cannot or will
  /// not split further.
  virtual std::unique_ptr<Spliterator<T>> try_split() = 0;

  /// Estimated number of remaining elements (exact when kSized).
  virtual std::uint64_t estimate_size() const = 0;

  /// Characteristic flags of this spliterator and its elements.
  virtual Characteristics characteristics() const = 0;

  bool has(Characteristics wanted) const {
    return has_characteristics(characteristics(), wanted);
  }
};

/// The destination window of an arbitrary spliterator, or nullopt when it
/// is not a WindowedSource (or cannot currently name one). Used both by
/// the destination-passing evaluator and by 1:1 wrappers delegating to
/// their upstream.
template <typename T>
std::optional<OutputWindow> output_window_of(const Spliterator<T>& sp) {
  const auto* w = dynamic_cast<const WindowedSource*>(&sp);
  return w != nullptr ? w->try_output_window() : std::nullopt;
}

}  // namespace pls::streams
