// Standard collectors library (mirrors java.util.stream.Collectors).
//
// Each factory returns a concrete Collector usable with Stream::collect in
// both sequential and parallel mode; all combiners fold the right-hand
// (later in encounter order) container into the left one, as the Collector
// contract requires.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "streams/collector.hpp"
#include "streams/sized_sink.hpp"

namespace pls::streams::collectors {

/// Collect all elements into a std::vector, in encounter order. The
/// returned collector implements the sized-sink protocol, so it takes the
/// destination-passing path whenever the source qualifies.
template <typename T>
auto to_vector() {
  return VectorCollector<T>{};
}

/// Collect into a std::set (sorted, deduplicated).
template <typename T>
auto to_set() {
  return make_collector<T>(
      [] { return std::set<T>{}; },
      [](std::set<T>& acc, const T& v) { acc.insert(v); },
      [](std::set<T>& left, std::set<T>& right) {
        left.merge(right);
      });
}

/// Count elements.
template <typename T>
auto counting() {
  return make_collector<T>(
      [] { return std::uint64_t{0}; },
      [](std::uint64_t& acc, const T&) { ++acc; },
      [](std::uint64_t& left, std::uint64_t& right) { left += right; });
}

/// Sum of `mapper(element)` values.
template <typename T, typename N, typename Mapper>
auto summing(Mapper mapper) {
  return make_collector<T>(
      [] { return N{}; },
      [mapper](N& acc, const T& v) { acc += mapper(v); },
      [](N& left, N& right) { left += right; });
}

/// Sum of the elements themselves.
template <typename T>
auto summing() {
  return summing<T, T>([](const T& v) { return v; });
}

/// Arithmetic mean of mapper(element) as double; empty input gives 0.
template <typename T, typename Mapper>
auto averaging(Mapper mapper) {
  struct Acc {
    double sum = 0.0;
    std::uint64_t n = 0;
  };
  return make_collector<T>(
      [] { return Acc{}; },
      [mapper](Acc& acc, const T& v) {
        acc.sum += static_cast<double>(mapper(v));
        ++acc.n;
      },
      [](Acc& left, Acc& right) {
        left.sum += right.sum;
        left.n += right.n;
      },
      [](Acc&& acc) {
        return acc.n == 0 ? 0.0 : acc.sum / static_cast<double>(acc.n);
      });
}

/// Concatenate strings with a separator (the paper's word-joining example:
/// the combiner inserts the separator between *partial results*, which is
/// exactly why it only runs in parallel mode).
inline auto joining(std::string separator = ", ", std::string prefix = "",
                    std::string suffix = "") {
  struct Acc {
    std::string text;
    bool empty = true;
  };
  return make_collector<std::string>(
      [] { return Acc{}; },
      [separator](Acc& acc, const std::string& v) {
        if (!acc.empty) acc.text += separator;
        acc.text += v;
        acc.empty = false;
      },
      [separator](Acc& left, Acc& right) {
        if (right.empty) return;
        if (!left.empty) left.text += separator;
        left.text += right.text;
        left.empty = false;
      },
      [prefix, suffix](Acc&& acc) { return prefix + acc.text + suffix; });
}

/// Minimum by comparator; empty input gives nullopt.
template <typename T, typename Cmp = std::less<T>>
auto min_by(Cmp cmp = Cmp{}) {
  return make_collector<T>(
      [] { return std::optional<T>{}; },
      [cmp](std::optional<T>& acc, const T& v) {
        if (!acc.has_value() || cmp(v, *acc)) acc = v;
      },
      [cmp](std::optional<T>& left, std::optional<T>& right) {
        if (right.has_value() && (!left.has_value() || cmp(*right, *left))) {
          left = std::move(right);
        }
      });
}

/// Maximum by comparator; empty input gives nullopt.
template <typename T, typename Cmp = std::less<T>>
auto max_by(Cmp cmp = Cmp{}) {
  return make_collector<T>(
      [] { return std::optional<T>{}; },
      [cmp](std::optional<T>& acc, const T& v) {
        if (!acc.has_value() || cmp(*acc, v)) acc = v;
      },
      [cmp](std::optional<T>& left, std::optional<T>& right) {
        if (right.has_value() && (!left.has_value() || cmp(*left, *right))) {
          left = std::move(right);
        }
      });
}

/// Group elements by key: map<K, vector<T>> in key order; within a group,
/// encounter order is preserved.
template <typename T, typename KeyFn>
auto grouping_by(KeyFn key) {
  using K = std::invoke_result_t<KeyFn&, const T&>;
  using Map = std::map<K, std::vector<T>>;
  return make_collector<T>(
      [] { return Map{}; },
      [key](Map& acc, const T& v) { acc[key(v)].push_back(v); },
      [](Map& left, Map& right) {
        for (auto& [k, vs] : right) {
          auto& dst = left[k];
          dst.insert(dst.end(), std::make_move_iterator(vs.begin()),
                     std::make_move_iterator(vs.end()));
        }
      });
}

/// Count / sum / min / max / mean in one pass (the analogue of Java's
/// summarizingDouble). Empty input: count 0, sum 0, min/max unset.
struct Summary {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::optional<double> min;
  std::optional<double> max;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

template <typename T, typename Mapper>
auto summarizing(Mapper mapper) {
  return make_collector<T>(
      [] { return Summary{}; },
      [mapper](Summary& s, const T& v) {
        const double d = static_cast<double>(mapper(v));
        ++s.count;
        s.sum += d;
        if (!s.min || d < *s.min) s.min = d;
        if (!s.max || d > *s.max) s.max = d;
      },
      [](Summary& l, Summary& r) {
        l.count += r.count;
        l.sum += r.sum;
        if (r.min && (!l.min || *r.min < *l.min)) l.min = r.min;
        if (r.max && (!l.max || *r.max > *l.max)) l.max = r.max;
      });
}

/// Run two collectors over the same elements in a single pass and merge
/// their results (Java 12's Collectors.teeing).
template <typename T, typename C1, typename C2, typename Merger>
auto teeing(C1 c1, C2 c2, Merger merger) {
  using A1 = typename C1::accumulation_type;
  using A2 = typename C2::accumulation_type;
  struct Acc {
    A1 first;
    A2 second;
  };
  return make_collector<T>(
      [c1, c2] { return Acc{c1.supply(), c2.supply()}; },
      [c1, c2](Acc& acc, const T& v) {
        c1.accumulate(acc.first, v);
        c2.accumulate(acc.second, v);
      },
      [c1, c2](Acc& l, Acc& r) {
        c1.combine(l.first, r.first);
        c2.combine(l.second, r.second);
      },
      [c1, c2, merger](Acc&& acc) {
        return merger(c1.finish(std::move(acc.first)),
                      c2.finish(std::move(acc.second)));
      });
}

/// Adapt a collector to consume mapper(element) (Collectors.mapping).
template <typename T, typename Mapper, typename C>
auto mapping(Mapper mapper, C downstream) {
  using A = typename C::accumulation_type;
  return make_collector<T>(
      [downstream] { return downstream.supply(); },
      [downstream, mapper](A& acc, const T& v) {
        downstream.accumulate(acc, mapper(v));
      },
      [downstream](A& l, A& r) { downstream.combine(l, r); },
      [downstream](A&& acc) { return downstream.finish(std::move(acc)); });
}

/// Split elements into (matching, non-matching) by a predicate.
template <typename T, typename Pred>
auto partitioning_by(Pred pred) {
  using Pair = std::pair<std::vector<T>, std::vector<T>>;
  return make_collector<T>(
      [] { return Pair{}; },
      [pred](Pair& acc, const T& v) {
        (pred(v) ? acc.first : acc.second).push_back(v);
      },
      [](Pair& left, Pair& right) {
        left.first.insert(left.first.end(),
                          std::make_move_iterator(right.first.begin()),
                          std::make_move_iterator(right.first.end()));
        left.second.insert(left.second.end(),
                           std::make_move_iterator(right.second.begin()),
                           std::make_move_iterator(right.second.end()));
      });
}

}  // namespace pls::streams::collectors
