// Terminal-operation evaluator: sequential and fork-join parallel.
//
// Parallel evaluation mirrors Java's: the spliterator is split recursively
// until chunks reach a target size (estimate / (parallelism * 4) by
// default, as in AbstractTask.suggestTargetSize), each leaf chunk is
// reduced sequentially into a fresh container from the collector's
// supplier, and containers are merged pairwise with the combiner on the way
// up — the divide-and-conquer template the paper builds PowerList functions
// on. try_split returns the *prefix*, so the left child of every fork is
// the earlier half: combining left <- right preserves encounter order for
// non-commutative combiners.
//
// collect has a second execution model, destination-passing style (DPS):
// when the collector is a sized sink (streams/sized_sink.hpp) and the
// source is SIZED|SUBSIZED, windowed (WindowedSource) and power-of-two
// sized, evaluate_collect allocates the result exactly once, threads each
// chunk's destination window down the split tree, and every leaf writes
// its elements straight to their final positions — the combine phase
// becomes a no-op join, dropping combine-phase data movement from
// O(n log n) to zero (docs/execution.md). Sources or collectors that do
// not qualify take the supplier/combiner path unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "forkjoin/pool.hpp"
#include "observe/counters.hpp"
#include "observe/critical_path.hpp"
#include "observe/histogram.hpp"
#include "observe/trace.hpp"
#include "streams/collector.hpp"
#include "streams/plan.hpp"
#include "streams/sink.hpp"
#include "streams/sized_sink.hpp"
#include "streams/spliterator.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace pls::streams {

// ExecutionConfig and every admission predicate (fusion, DPS, grain,
// drive, kernel) live in streams/plan.hpp — the planner. This file is
// the execution layer: it obeys plans, it does not make decisions.

/// Terminal-operation descriptors for the unified evaluate() dispatch:
/// one value type per terminal kind, holding the operation by reference
/// (descriptors live only for the duration of the evaluate call). Both the
/// dynamic Stream terminals and the typed static pipeline
/// (streams/static_fusion.hpp) funnel through these, so fused, legacy and
/// destination-passing routing exists exactly once.
namespace terminals {

template <typename C>
struct Collect {
  const C& collector;
};

template <typename Op>
struct Reduce {
  const Op& op;
};

template <typename Fn>
struct ForEach {
  const Fn& fn;
};

struct Count {};

// Short-circuit terminals: the cancellation signal lives in the terminal
// sink itself, so fused plans drive these element-mode regardless of the
// stage chain (DriveMode::kElementLoop) and consume exactly as deep into
// the source as the legacy pull loops.

template <typename Pred>
struct AnyMatch {
  const Pred& pred;
};

template <typename Pred>
struct AllMatch {
  const Pred& pred;
};

template <typename Pred>
struct NoneMatch {
  const Pred& pred;
};

struct FindFirst {};

template <typename C>
constexpr Collect<C> collect(const C& c) {
  return {c};
}
template <typename Op>
constexpr Reduce<Op> reduce(const Op& op) {
  return {op};
}
template <typename Fn>
constexpr ForEach<Fn> for_each(const Fn& fn) {
  return {fn};
}
constexpr Count count() { return {}; }
template <typename Pred>
constexpr AnyMatch<Pred> any_match(const Pred& pred) {
  return {pred};
}
template <typename Pred>
constexpr AllMatch<Pred> all_match(const Pred& pred) {
  return {pred};
}
template <typename Pred>
constexpr NoneMatch<Pred> none_match(const Pred& pred) {
  return {pred};
}
constexpr FindFirst find_first() { return {}; }

}  // namespace terminals

namespace detail {

/// Exact remaining-element count for SIZED sources, 0 (uncounted) for
/// unsized ones — keeps the observe hooks free of per-element work.
template <typename T>
std::uint64_t countable_size(const Spliterator<T>& sp) {
  return sp.has(kSized) ? sp.estimate_size() : 0;
}

template <typename T, typename C>
typename C::accumulation_type collect_leaf(Spliterator<T>& sp, const C& c,
                                           observe::CpNode* cp = nullptr) {
  const std::uint64_t elems = countable_size(sp);
  observe::Span span(observe::EventKind::kAccumulate, elems);
  observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
  observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
  observe::cp_add_elements(cp, elems);
  observe::local_counters().on_leaf(elems);
  auto acc = c.supply();
  observe::local_counters().on_allocation();
  sp.for_each_remaining(
      [&](const T& value) { c.accumulate(acc, value); });
  return acc;
}

template <typename T, typename C>
typename C::accumulation_type collect_tree(forkjoin::ForkJoinPool& pool,
                                           Spliterator<T>& sp, const C& c,
                                           std::uint64_t target,
                                           unsigned depth = 0,
                                           observe::CpNode* cp = nullptr) {
  using A = typename C::accumulation_type;
  if (sp.estimate_size() <= target) return collect_leaf(sp, c, cp);
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return sp.try_split();
  }();
  if (!prefix) return collect_leaf(sp, c, cp);
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  std::optional<A> left;
  std::optional<A> right;
  pool.invoke_two(
      [&, cl = cl] {
        left.emplace(collect_tree(pool, *prefix, c, target, depth + 1, cl));
      },
      [&, cr = cr] {
        right.emplace(collect_tree(pool, sp, c, target, depth + 1, cr));
      });
  {
    observe::Span span(observe::EventKind::kCombine, depth);
    observe::CpScope phase(cp, observe::CpPhase::kCombine);
    observe::LatencyTimer combine_timer(observe::Metric::kCombineRun);
    c.combine(*left, *right);
  }
  observe::local_counters().on_combine();
  return std::move(*left);
}

// DPS admission is plan_dps_window (streams/plan.hpp) — the planner's
// single-home predicate. The walks below assume admission already held.

template <typename T, typename C>
  requires SizedSinkCollector<C, T>
void collect_into_leaf(Spliterator<T>& sp, const C& c,
                       typename C::sized_accumulation_type& sink,
                       const OutputWindow& root,
                       observe::CpNode* cp = nullptr) {
  const auto w = output_window_of(sp);
  PLS_CHECK(w.has_value(),
            "windowed SUBSIZED source split into a non-windowed chunk");
  // Rebase this chunk's window against the root's: the source may itself
  // be a strided sub-window (e.g. a zip-split product), but the result
  // buffer is indexed 0..root.count in root strides.
  const std::uint64_t base = (w->start - root.start) / root.incr;
  const std::uint64_t step = w->incr / root.incr;
  PLS_CHECK(w->count == 0 || base + (w->count - 1) * step < root.count,
            "destination window exceeds the result buffer");
  const std::uint64_t elems = countable_size(sp);
  observe::Span span(observe::EventKind::kAccumulate, elems);
  observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
  observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
  observe::cp_add_elements(cp, elems);
  observe::local_counters().on_leaf(elems);
  std::uint64_t k = 0;
  sp.for_each_remaining([&](const T& value) {
    c.accumulate_at(sink, base + k * step, value);
    ++k;
  });
  PLS_CHECK(k == w->count, "chunk yielded a different count than its window");
}

template <typename T, typename C>
  requires SizedSinkCollector<C, T>
void collect_into_tree(forkjoin::ForkJoinPool& pool, Spliterator<T>& sp,
                       const C& c, typename C::sized_accumulation_type& sink,
                       const OutputWindow& root, std::uint64_t target,
                       unsigned depth = 0, observe::CpNode* cp = nullptr) {
  if (sp.estimate_size() <= target) {
    collect_into_leaf(sp, c, sink, root, cp);
    return;
  }
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return sp.try_split();
  }();
  if (!prefix) {
    collect_into_leaf(sp, c, sink, root, cp);
    return;
  }
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  pool.invoke_two(
      [&, cl = cl] {
        collect_into_tree(pool, *prefix, c, sink, root, target, depth + 1, cl);
      },
      [&, cr = cr] {
        collect_into_tree(pool, sp, c, sink, root, target, depth + 1, cr);
      });
  // The join is a true no-op: both children wrote disjoint windows of
  // `sink`, so nothing is combined, counted, or moved on the way up.
}

template <typename T, typename Op>
std::optional<T> reduce_leaf(Spliterator<T>& sp, const Op& op) {
  std::optional<T> acc;
  sp.for_each_remaining([&](const T& value) {
    if (acc.has_value()) {
      *acc = op(std::move(*acc), value);
    } else {
      acc = value;
    }
  });
  return acc;
}

template <typename T, typename Op>
std::optional<T> reduce_tree(forkjoin::ForkJoinPool& pool, Spliterator<T>& sp,
                             const Op& op, std::uint64_t target,
                             unsigned depth = 0,
                             observe::CpNode* cp = nullptr) {
  if (sp.estimate_size() <= target) {
    observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
    observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
    observe::cp_add_elements(cp, countable_size(sp));
    observe::local_counters().on_leaf(countable_size(sp));
    return reduce_leaf(sp, op);
  }
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return sp.try_split();
  }();
  if (!prefix) {
    observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
    observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
    observe::cp_add_elements(cp, countable_size(sp));
    observe::local_counters().on_leaf(countable_size(sp));
    return reduce_leaf(sp, op);
  }
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  std::optional<T> left;
  std::optional<T> right;
  pool.invoke_two(
      [&, cl = cl] { left = reduce_tree(pool, *prefix, op, target, depth + 1, cl); },
      [&, cr = cr] { right = reduce_tree(pool, sp, op, target, depth + 1, cr); });
  if (left.has_value() && right.has_value()) {
    observe::CpScope phase(cp, observe::CpPhase::kCombine);
    observe::LatencyTimer combine_timer(observe::Metric::kCombineRun);
    observe::local_counters().on_combine();
    return op(std::move(*left), std::move(*right));
  }
  return left.has_value() ? std::move(left) : std::move(right);
}

template <typename T, typename Fn>
void for_each_tree(forkjoin::ForkJoinPool& pool, Spliterator<T>& sp,
                   const Fn& fn, std::uint64_t target, unsigned depth = 0,
                   observe::CpNode* cp = nullptr) {
  if (sp.estimate_size() <= target) {
    observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
    observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
    observe::cp_add_elements(cp, countable_size(sp));
    observe::local_counters().on_leaf(countable_size(sp));
    sp.for_each_remaining([&](const T& value) { fn(value); });
    return;
  }
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return sp.try_split();
  }();
  if (!prefix) {
    observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
    observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
    observe::cp_add_elements(cp, countable_size(sp));
    observe::local_counters().on_leaf(countable_size(sp));
    sp.for_each_remaining([&](const T& value) { fn(value); });
    return;
  }
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  pool.invoke_two(
      [&, cl = cl] { for_each_tree(pool, *prefix, fn, target, depth + 1, cl); },
      [&, cr = cr] { for_each_tree(pool, sp, fn, target, depth + 1, cr); });
}

template <typename T>
std::uint64_t count_tree(forkjoin::ForkJoinPool& pool, Spliterator<T>& sp,
                         std::uint64_t target, unsigned depth = 0,
                         observe::CpNode* cp = nullptr) {
  if (sp.estimate_size() <= target) {
    observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
    observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
    std::uint64_t n = 0;
    sp.for_each_remaining([&](const T&) { ++n; });
    observe::cp_add_elements(cp, n);
    observe::local_counters().on_leaf(n);
    return n;
  }
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return sp.try_split();
  }();
  if (!prefix) {
    observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
    observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
    std::uint64_t n = 0;
    sp.for_each_remaining([&](const T&) { ++n; });
    observe::cp_add_elements(cp, n);
    observe::local_counters().on_leaf(n);
    return n;
  }
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  std::uint64_t left = 0, right = 0;
  pool.invoke_two(
      [&, cl = cl] { left = count_tree(pool, *prefix, target, depth + 1, cl); },
      [&, cr = cr] { right = count_tree(pool, sp, target, depth + 1, cr); });
  return left + right;
}

// ---- fused (push-mode) evaluation ------------------------------------
//
// The fused walks mirror the wrapper walks exactly — same split policy,
// same Span/CpScope/LatencyTimer/counter instrumentation at the same
// points — but each leaf composes one sink chain and runs one push loop
// instead of traversing the wrapper pipeline per element. Every fused
// leaf additionally bumps the fused_leaves counter so reports and the
// critical-path profiler attribute the win (leaf_chunks - fused_leaves
// is the legacy count).

/// Terminal sink feeding a classic collector's accumulator. Templated on
/// the concrete collector so final collectors devirtualise in the chunk
/// loop; collectors exposing a chunk fold (ChunkAccumulatingCollector —
/// the SIMD kernel hook) get whole contiguous chunks instead of the
/// per-element loop.
template <typename T, typename C>
class CollectorSink final : public Sink<T> {
 public:
  CollectorSink(const C& c, typename C::accumulation_type& acc)
      : c_(c), acc_(acc) {}

  void accept(const T& value) override { c_.accumulate(acc_, value); }

  void accept_chunk(const T* values, std::size_t n) override {
    if constexpr (ChunkAccumulatingCollector<C, T>) {
      c_.accumulate_chunk(acc_, values, n);
    } else {
      for (std::size_t i = 0; i < n; ++i) c_.accumulate(acc_, values[i]);
    }
  }

 private:
  const C& c_;
  typename C::accumulation_type& acc_;
};

/// Terminal sink of the fused destination-passing collect: writes element
/// k of this leaf to final position base + k * step of the shared sized
/// sink (the same rebasing arithmetic as collect_into_leaf).
template <typename T, typename C>
class DpsSink final : public Sink<T> {
 public:
  DpsSink(const C& c, typename C::sized_accumulation_type& sink,
          std::uint64_t base, std::uint64_t step)
      : c_(c), sink_(sink), base_(base), step_(step) {}

  void accept(const T& value) override {
    c_.accumulate_at(sink_, base_ + k_ * step_, value);
    ++k_;
  }

  void accept_chunk(const T* values, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) {
      c_.accumulate_at(sink_, base_ + k_ * step_, values[i]);
      ++k_;
    }
  }

  std::uint64_t written() const noexcept { return k_; }

 private:
  const C& c_;
  typename C::sized_accumulation_type& sink_;
  std::uint64_t base_;
  std::uint64_t step_;
  std::uint64_t k_ = 0;
};

template <typename T, typename Op>
class ReduceSink final : public Sink<T> {
 public:
  ReduceSink(const Op& op, std::optional<T>& acc) : op_(op), acc_(acc) {}

  void accept(const T& value) override {
    if (acc_.has_value()) {
      *acc_ = op_(std::move(*acc_), value);
    } else {
      acc_ = value;
    }
  }

  void accept_chunk(const T* values, std::size_t n) override {
    std::size_t i = 0;
    if (!acc_.has_value() && n > 0) acc_ = values[i++];
    for (; i < n; ++i) *acc_ = op_(std::move(*acc_), values[i]);
  }

 private:
  const Op& op_;
  std::optional<T>& acc_;
};

template <typename T, typename Fn>
class ForEachSink final : public Sink<T> {
 public:
  explicit ForEachSink(const Fn& fn) : fn_(fn) {}

  void accept(const T& value) override { fn_(value); }

  void accept_chunk(const T* values, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) fn_(values[i]);
  }

 private:
  const Fn& fn_;
};

template <typename T>
class CountSink final : public Sink<T> {
 public:
  void accept(const T&) override { ++n_; }
  void accept_chunk(const T*, std::size_t n) override { n_ += n; }
  std::uint64_t count() const noexcept { return n_; }

 private:
  std::uint64_t n_ = 0;
};

// Cancelling terminal sinks of the short-circuit terminals. Each raises
// cancellation_requested() the moment its answer is decided; the
// element-mode driver (FusedPipeline::drive_short_circuit) checks it
// between source elements, so the source is consumed exactly as deep as
// the legacy pull loop would have consumed it.

template <typename T, typename Pred>
class AnyMatchSink final : public Sink<T> {
 public:
  AnyMatchSink(const Pred& pred, bool& found) : pred_(pred), found_(found) {}

  void accept(const T& value) override {
    if (!found_ && pred_(value)) found_ = true;
  }
  bool cancellation_requested() const override { return found_; }

 private:
  const Pred& pred_;
  bool& found_;
};

template <typename T, typename Pred>
class AllMatchSink final : public Sink<T> {
 public:
  AllMatchSink(const Pred& pred, bool& ok) : pred_(pred), ok_(ok) {}

  void accept(const T& value) override {
    if (ok_ && !pred_(value)) ok_ = false;
  }
  bool cancellation_requested() const override { return !ok_; }

 private:
  const Pred& pred_;
  bool& ok_;
};

template <typename T>
class FindFirstSink final : public Sink<T> {
 public:
  explicit FindFirstSink(std::optional<T>& out) : out_(out) {}

  void accept(const T& value) override {
    if (!out_.has_value()) out_ = value;
  }
  bool cancellation_requested() const override { return out_.has_value(); }

 private:
  std::optional<T>& out_;
};

/// Drive a short-circuit terminal sink over a fused pipeline. Always one
/// element-mode leaf on the calling thread — encounter-order semantics,
/// exactly like the legacy pull loops (which also ignore parallelism).
template <typename T, typename SinkT>
void fused_short_circuit_drive(FusedPipeline& fp, SinkT& sink) {
  observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
  observe::Span span(observe::EventKind::kAccumulate, 0);
  observe::local_counters().on_fused_leaf();
  fp.drive_short_circuit(sink);
}

/// Leaf-entry bookkeeping shared by every fused leaf: the same counter and
/// critical-path feeds as the wrapper leaves (countable_estimate mirrors
/// countable_size of the outermost wrapper), plus the fused tally.
inline std::uint64_t fused_leaf_enter(const FusedPipeline& fp,
                                      observe::CpNode* cp) {
  const std::uint64_t elems = fp.countable_estimate();
  observe::cp_add_elements(cp, elems);
  observe::local_counters().on_leaf(elems);
  observe::local_counters().on_fused_leaf();
  return elems;
}

template <typename T, typename C>
typename C::accumulation_type fused_collect_leaf(
    FusedPipeline& fp, const C& c, observe::CpNode* cp = nullptr) {
  const std::uint64_t elems = fp.countable_estimate();
  observe::Span span(observe::EventKind::kAccumulate, elems);
  observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
  observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
  fused_leaf_enter(fp, cp);
  auto acc = c.supply();
  observe::local_counters().on_allocation();
  CollectorSink<T, C> sink(c, acc);
  fp.drive(sink);
  return acc;
}

template <typename T, typename C>
typename C::accumulation_type fused_collect_tree(
    forkjoin::ForkJoinPool& pool, FusedPipeline& fp, const C& c,
    std::uint64_t target, unsigned depth = 0,
    observe::CpNode* cp = nullptr) {
  using A = typename C::accumulation_type;
  if (fp.estimate_size() <= target) return fused_collect_leaf<T>(fp, c, cp);
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return fp.try_split();
  }();
  if (!prefix) return fused_collect_leaf<T>(fp, c, cp);
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  std::optional<A> left;
  std::optional<A> right;
  pool.invoke_two(
      [&, cl = cl] {
        left.emplace(
            fused_collect_tree<T>(pool, *prefix, c, target, depth + 1, cl));
      },
      [&, cr = cr] {
        right.emplace(
            fused_collect_tree<T>(pool, fp, c, target, depth + 1, cr));
      });
  {
    observe::Span span(observe::EventKind::kCombine, depth);
    observe::CpScope phase(cp, observe::CpPhase::kCombine);
    observe::LatencyTimer combine_timer(observe::Metric::kCombineRun);
    c.combine(*left, *right);
  }
  observe::local_counters().on_combine();
  return std::move(*left);
}

template <typename T, typename C>
  requires SizedSinkCollector<C, T>
void fused_collect_into_leaf(FusedPipeline& fp, const C& c,
                             typename C::sized_accumulation_type& sink,
                             const OutputWindow& root,
                             observe::CpNode* cp = nullptr) {
  const auto w = fp.source_window();
  PLS_CHECK(w.has_value(),
            "windowed fused source split into a non-windowed chunk");
  const std::uint64_t base = (w->start - root.start) / root.incr;
  const std::uint64_t step = w->incr / root.incr;
  PLS_CHECK(w->count == 0 || base + (w->count - 1) * step < root.count,
            "destination window exceeds the result buffer");
  const std::uint64_t elems = fp.countable_estimate();
  observe::Span span(observe::EventKind::kAccumulate, elems);
  observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
  observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
  fused_leaf_enter(fp, cp);
  DpsSink<T, C> s(c, sink, base, step);
  fp.drive(s);
  PLS_CHECK(s.written() == w->count,
            "fused chunk yielded a different count than its window");
}

template <typename T, typename C>
  requires SizedSinkCollector<C, T>
void fused_collect_into_tree(forkjoin::ForkJoinPool& pool, FusedPipeline& fp,
                             const C& c,
                             typename C::sized_accumulation_type& sink,
                             const OutputWindow& root, std::uint64_t target,
                             unsigned depth = 0,
                             observe::CpNode* cp = nullptr) {
  if (fp.estimate_size() <= target) {
    fused_collect_into_leaf<T>(fp, c, sink, root, cp);
    return;
  }
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return fp.try_split();
  }();
  if (!prefix) {
    fused_collect_into_leaf<T>(fp, c, sink, root, cp);
    return;
  }
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  pool.invoke_two(
      [&, cl = cl] {
        fused_collect_into_tree<T>(pool, *prefix, c, sink, root, target,
                                   depth + 1, cl);
      },
      [&, cr = cr] {
        fused_collect_into_tree<T>(pool, fp, c, sink, root, target,
                                   depth + 1, cr);
      });
}

template <typename T, typename Op>
std::optional<T> fused_reduce_leaf(FusedPipeline& fp, const Op& op,
                                   observe::CpNode* cp = nullptr) {
  observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
  observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
  fused_leaf_enter(fp, cp);
  std::optional<T> acc;
  ReduceSink<T, Op> sink(op, acc);
  fp.drive(sink);
  return acc;
}

template <typename T, typename Op>
std::optional<T> fused_reduce_tree(forkjoin::ForkJoinPool& pool,
                                   FusedPipeline& fp, const Op& op,
                                   std::uint64_t target, unsigned depth = 0,
                                   observe::CpNode* cp = nullptr) {
  if (fp.estimate_size() <= target) return fused_reduce_leaf<T>(fp, op, cp);
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return fp.try_split();
  }();
  if (!prefix) return fused_reduce_leaf<T>(fp, op, cp);
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  std::optional<T> left;
  std::optional<T> right;
  pool.invoke_two(
      [&, cl = cl] {
        left = fused_reduce_tree<T>(pool, *prefix, op, target, depth + 1, cl);
      },
      [&, cr = cr] {
        right = fused_reduce_tree<T>(pool, fp, op, target, depth + 1, cr);
      });
  if (left.has_value() && right.has_value()) {
    observe::CpScope phase(cp, observe::CpPhase::kCombine);
    observe::LatencyTimer combine_timer(observe::Metric::kCombineRun);
    observe::local_counters().on_combine();
    return op(std::move(*left), std::move(*right));
  }
  return left.has_value() ? std::move(left) : std::move(right);
}

template <typename T, typename Fn>
void fused_for_each_leaf(FusedPipeline& fp, const Fn& fn,
                         observe::CpNode* cp = nullptr) {
  observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
  observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
  fused_leaf_enter(fp, cp);
  ForEachSink<T, Fn> sink(fn);
  fp.drive(sink);
}

template <typename T, typename Fn>
void fused_for_each_tree(forkjoin::ForkJoinPool& pool, FusedPipeline& fp,
                         const Fn& fn, std::uint64_t target,
                         unsigned depth = 0, observe::CpNode* cp = nullptr) {
  if (fp.estimate_size() <= target) {
    fused_for_each_leaf<T>(fp, fn, cp);
    return;
  }
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return fp.try_split();
  }();
  if (!prefix) {
    fused_for_each_leaf<T>(fp, fn, cp);
    return;
  }
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  pool.invoke_two(
      [&, cl = cl] {
        fused_for_each_tree<T>(pool, *prefix, fn, target, depth + 1, cl);
      },
      [&, cr = cr] {
        fused_for_each_tree<T>(pool, fp, fn, target, depth + 1, cr);
      });
}

template <typename T>
std::uint64_t fused_count_leaf(FusedPipeline& fp,
                               observe::CpNode* cp = nullptr) {
  observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
  observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
  CountSink<T> sink;
  fp.drive(sink);
  const std::uint64_t n = sink.count();
  observe::cp_add_elements(cp, n);
  observe::local_counters().on_leaf(n);
  observe::local_counters().on_fused_leaf();
  return n;
}

template <typename T>
std::uint64_t fused_count_tree(forkjoin::ForkJoinPool& pool,
                               FusedPipeline& fp, std::uint64_t target,
                               unsigned depth = 0,
                               observe::CpNode* cp = nullptr) {
  if (fp.estimate_size() <= target) return fused_count_leaf<T>(fp, cp);
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return fp.try_split();
  }();
  if (!prefix) return fused_count_leaf<T>(fp, cp);
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  std::uint64_t left = 0, right = 0;
  pool.invoke_two(
      [&, cl = cl] {
        left = fused_count_tree<T>(pool, *prefix, target, depth + 1, cl);
      },
      [&, cr = cr] {
        right = fused_count_tree<T>(pool, fp, target, depth + 1, cr);
      });
  return left + right;
}

// ---- fused terminal dispatch -----------------------------------------
//
// One run_fused overload per terminal descriptor; T is the pipeline's
// output element type. Each obeys the plan the caller computed (DPS
// verdict, resolved grain) and feeds profiled runs back to the PlanCache;
// both the dynamic evaluate() entry and the static pipeline's
// evaluate_fused arrive here with a plan.

template <typename T, typename C>
typename C::result_type run_fused(FusedPipeline& fused,
                                  const terminals::Collect<C>& term,
                                  bool parallel, const ExecutionConfig& cfg,
                                  const ExecutionPlan& plan) {
  const C& c = term.collector;
  if constexpr (SizedSinkCollector<C, T>) {
    if (plan.dps) {
      const OutputWindow root = *plan.window;
      auto sink = c.supply_sized(root.count);
      if (!parallel) {
        fused_collect_into_leaf<T>(fused, c, sink, root);
      } else {
        auto& pool = cfg.effective_pool();
        observe::CpNode* cp = observe::cp_new_root();
        pool.run([&] {
          fused_collect_into_tree<T>(pool, fused, c, sink, root, plan.grain,
                                     0, cp);
        });
        plan_feedback(plan, cp);
      }
      return c.finish_sized(std::move(sink));
    }
  }
  if (!parallel) {
    return c.finish(fused_collect_leaf<T>(fused, c));
  }
  auto& pool = cfg.effective_pool();
  observe::CpNode* cp = observe::cp_new_root();
  auto acc = pool.run([&] {
    return fused_collect_tree<T>(pool, fused, c, plan.grain, 0, cp);
  });
  plan_feedback(plan, cp);
  return c.finish(std::move(acc));
}

template <typename T, typename Op>
std::optional<T> run_fused(FusedPipeline& fused,
                           const terminals::Reduce<Op>& term, bool parallel,
                           const ExecutionConfig& cfg,
                           const ExecutionPlan& plan) {
  if (!parallel) return fused_reduce_leaf<T>(fused, term.op);
  auto& pool = cfg.effective_pool();
  observe::CpNode* cp = observe::cp_new_root();
  auto out = pool.run([&] {
    return fused_reduce_tree<T>(pool, fused, term.op, plan.grain, 0, cp);
  });
  plan_feedback(plan, cp);
  return out;
}

template <typename T, typename Fn>
void run_fused(FusedPipeline& fused, const terminals::ForEach<Fn>& term,
               bool parallel, const ExecutionConfig& cfg,
               const ExecutionPlan& plan) {
  if (!parallel) {
    fused_for_each_leaf<T>(fused, term.fn);
    return;
  }
  auto& pool = cfg.effective_pool();
  observe::CpNode* cp = observe::cp_new_root();
  pool.run([&] {
    fused_for_each_tree<T>(pool, fused, term.fn, plan.grain, 0, cp);
  });
  plan_feedback(plan, cp);
}

template <typename T>
std::uint64_t run_fused(FusedPipeline& fused, const terminals::Count&,
                        bool parallel, const ExecutionConfig& cfg,
                        const ExecutionPlan& plan) {
  if (!parallel) return fused_count_leaf<T>(fused);
  auto& pool = cfg.effective_pool();
  observe::CpNode* cp = observe::cp_new_root();
  auto out = pool.run(
      [&] { return fused_count_tree<T>(pool, fused, plan.grain, 0, cp); });
  plan_feedback(plan, cp);
  return out;
}

// Short-circuit terminals run one element-mode leaf whatever the parallel
// flag says (the plan records DriveMode::kElementLoop): splitting could
// find *a* match but not the encounter-order-first one, and the legacy
// pull loops they must stay consumption-identical to are sequential too.

template <typename T, typename Pred>
bool run_fused(FusedPipeline& fused, const terminals::AnyMatch<Pred>& term,
               bool /*parallel*/, const ExecutionConfig& /*cfg*/,
               const ExecutionPlan& /*plan*/) {
  bool found = false;
  AnyMatchSink<T, Pred> sink(term.pred, found);
  fused_short_circuit_drive<T>(fused, sink);
  return found;
}

template <typename T, typename Pred>
bool run_fused(FusedPipeline& fused, const terminals::AllMatch<Pred>& term,
               bool /*parallel*/, const ExecutionConfig& /*cfg*/,
               const ExecutionPlan& /*plan*/) {
  bool ok = true;
  AllMatchSink<T, Pred> sink(term.pred, ok);
  fused_short_circuit_drive<T>(fused, sink);
  return ok;
}

template <typename T, typename Pred>
bool run_fused(FusedPipeline& fused, const terminals::NoneMatch<Pred>& term,
               bool /*parallel*/, const ExecutionConfig& /*cfg*/,
               const ExecutionPlan& /*plan*/) {
  bool found = false;
  AnyMatchSink<T, Pred> sink(term.pred, found);
  fused_short_circuit_drive<T>(fused, sink);
  return !found;
}

template <typename T>
std::optional<T> run_fused(FusedPipeline& fused, const terminals::FindFirst&,
                           bool /*parallel*/, const ExecutionConfig& /*cfg*/,
                           const ExecutionPlan& /*plan*/) {
  std::optional<T> out;
  FindFirstSink<T> sink(out);
  fused_short_circuit_drive<T>(fused, sink);
  return out;
}

}  // namespace detail

/// Run a mutable reduction in destination-passing style: acquire the sized
/// sink exactly once, walk the split tree threading each chunk's output
/// window, and let every leaf write its elements to their final positions.
/// `root` must be the window the source reported for the whole input
/// (evaluate_collect performs the admission checks and calls this; invoke
/// directly only when both are already known to hold). In parallel mode
/// the sink is written concurrently — always at distinct positions.
template <typename T, typename C>
  requires SizedSinkCollector<C, T>
typename C::result_type evaluate_collect_into(Spliterator<T>& sp, const C& c,
                                              const OutputWindow& root,
                                              bool parallel,
                                              const ExecutionConfig& cfg = {},
                                              const ExecutionPlan* plan =
                                                  nullptr) {
  auto sink = c.supply_sized(root.count);
  if (!parallel) {
    detail::collect_into_leaf(sp, c, sink, root);
  } else {
    auto& pool = cfg.effective_pool();
    const std::uint64_t target =
        plan ? plan->grain : cfg.target_size(root.count, pool.parallelism());
    observe::CpNode* cp = observe::cp_new_root();
    pool.run([&] {
      detail::collect_into_tree(pool, sp, c, sink, root, target, 0, cp);
    });
    if (plan) plan_feedback(*plan, cp);
  }
  return c.finish_sized(std::move(sink));
}

/// Run a full mutable reduction over the spliterator. Prefers the
/// destination-passing path when the collector is a sized sink and the
/// source qualifies (see plan_dps_window in streams/plan.hpp); otherwise —
/// or when cfg.sized_sink is off — runs the classic supplier/combiner
/// reduction. When a plan is supplied the routing and grain follow its
/// verdicts verbatim; standalone callers (nullptr) get the same decisions
/// re-derived from the planner's predicates.
template <typename T, typename C>
typename C::result_type evaluate_collect(Spliterator<T>& sp, const C& c,
                                         bool parallel,
                                         const ExecutionConfig& cfg = {},
                                         const ExecutionPlan* plan = nullptr) {
  if constexpr (SizedSinkCollector<C, T>) {
    if (plan) {
      if (plan->dps) {
        return evaluate_collect_into(sp, c, *plan->window, parallel, cfg,
                                     plan);
      }
    } else if (cfg.sized_sink) {
      if (auto root = plan_dps_window(sp)) {
        return evaluate_collect_into(sp, c, *root, parallel, cfg);
      }
    }
  }
  if (!parallel) {
    return c.finish(detail::collect_leaf(sp, c));
  }
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      plan ? plan->grain
           : cfg.target_size(sp.estimate_size(), pool.parallelism());
  observe::CpNode* cp = observe::cp_new_root();
  auto acc = pool.run(
      [&] { return detail::collect_tree(pool, sp, c, target, 0, cp); });
  if (plan) plan_feedback(*plan, cp);
  return c.finish(std::move(acc));
}

/// Reduce with an associative binary operator; empty source gives nullopt.
template <typename T, typename Op>
std::optional<T> evaluate_reduce(Spliterator<T>& sp, const Op& op,
                                 bool parallel,
                                 const ExecutionConfig& cfg = {},
                                 const ExecutionPlan* plan = nullptr) {
  if (!parallel) return detail::reduce_leaf(sp, op);
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      plan ? plan->grain
           : cfg.target_size(sp.estimate_size(), pool.parallelism());
  observe::CpNode* cp = observe::cp_new_root();
  auto out = pool.run(
      [&] { return detail::reduce_tree(pool, sp, op, target, 0, cp); });
  if (plan) plan_feedback(*plan, cp);
  return out;
}

/// Apply `fn` to every element. In parallel mode `fn` must be safe to call
/// concurrently; no encounter-order guarantee (as in Java's forEach).
template <typename T, typename Fn>
void evaluate_for_each(Spliterator<T>& sp, const Fn& fn, bool parallel,
                       const ExecutionConfig& cfg = {},
                       const ExecutionPlan* plan = nullptr) {
  if (!parallel) {
    sp.for_each_remaining([&](const T& value) { fn(value); });
    return;
  }
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      plan ? plan->grain
           : cfg.target_size(sp.estimate_size(), pool.parallelism());
  observe::CpNode* cp = observe::cp_new_root();
  pool.run([&] { detail::for_each_tree(pool, sp, fn, target, 0, cp); });
  if (plan) plan_feedback(*plan, cp);
}

/// Count elements (traverses; exact regardless of SIZED).
template <typename T>
std::uint64_t evaluate_count(Spliterator<T>& sp, bool parallel,
                             const ExecutionConfig& cfg = {},
                             const ExecutionPlan* plan = nullptr) {
  if (!parallel) {
    std::uint64_t n = 0;
    sp.for_each_remaining([&](const T&) { ++n; });
    return n;
  }
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      plan ? plan->grain
           : cfg.target_size(sp.estimate_size(), pool.parallelism());
  observe::CpNode* cp = observe::cp_new_root();
  auto out = pool.run(
      [&] { return detail::count_tree(pool, sp, target, 0, cp); });
  if (plan) plan_feedback(*plan, cp);
  return out;
}

// ---- unified pipeline terminal dispatch ------------------------------
//
// Stream terminals hand their outermost spliterator here by owning
// pointer, together with a terminals:: descriptor naming the operation.
// evaluate() asks the planner (plan_pipeline, streams/plan.hpp) for an
// ExecutionPlan, records it for pls::session::explain(), and then merely
// obeys it: fused plans run push-mode, unfused plans walk the wrappers
// through the legacy pulls above. The legacy evaluate_* functions keep
// their exact standalone behaviour for direct callers (powerlist
// executors, existing tests) when no plan is passed.

namespace detail {

// Compile-time facts about a terminal descriptor that the planner needs:
// which terminal it is, and (for collect) whether the collector supports
// the sized-sink protocol and chunk accumulation.

template <typename T, typename Term>
struct TerminalTraits;

template <typename T, typename C>
struct TerminalTraits<T, terminals::Collect<C>> {
  static constexpr TerminalKind kind = TerminalKind::kCollect;
  static constexpr bool sized_collector = SizedSinkCollector<C, T>;
  static constexpr bool chunk_collector = ChunkAccumulatingCollector<C, T>;
};

template <typename T, typename Op>
struct TerminalTraits<T, terminals::Reduce<Op>> {
  static constexpr TerminalKind kind = TerminalKind::kReduce;
  static constexpr bool sized_collector = false;
  static constexpr bool chunk_collector = false;
};

template <typename T, typename Fn>
struct TerminalTraits<T, terminals::ForEach<Fn>> {
  static constexpr TerminalKind kind = TerminalKind::kForEach;
  static constexpr bool sized_collector = false;
  static constexpr bool chunk_collector = false;
};

template <typename T>
struct TerminalTraits<T, terminals::Count> {
  static constexpr TerminalKind kind = TerminalKind::kCount;
  static constexpr bool sized_collector = false;
  static constexpr bool chunk_collector = false;
};

template <typename T, typename Pred>
struct TerminalTraits<T, terminals::AnyMatch<Pred>> {
  static constexpr TerminalKind kind = TerminalKind::kAnyMatch;
  static constexpr bool sized_collector = false;
  static constexpr bool chunk_collector = false;
};

template <typename T, typename Pred>
struct TerminalTraits<T, terminals::AllMatch<Pred>> {
  static constexpr TerminalKind kind = TerminalKind::kAllMatch;
  static constexpr bool sized_collector = false;
  static constexpr bool chunk_collector = false;
};

template <typename T, typename Pred>
struct TerminalTraits<T, terminals::NoneMatch<Pred>> {
  static constexpr TerminalKind kind = TerminalKind::kNoneMatch;
  static constexpr bool sized_collector = false;
  static constexpr bool chunk_collector = false;
};

template <typename T>
struct TerminalTraits<T, terminals::FindFirst> {
  static constexpr TerminalKind kind = TerminalKind::kFindFirst;
  static constexpr bool sized_collector = false;
  static constexpr bool chunk_collector = false;
};

// Legacy (pull-mode) routing, one overload per terminal descriptor.
// Defined after the evaluate_* functions they forward to; the plan is
// threaded through so grain/DPS follow the planner's verdicts.

template <typename T, typename C>
typename C::result_type run_legacy(Spliterator<T>& sp,
                                   const terminals::Collect<C>& term,
                                   bool parallel, const ExecutionConfig& cfg,
                                   const ExecutionPlan* plan) {
  return evaluate_collect(sp, term.collector, parallel, cfg, plan);
}

template <typename T, typename Op>
std::optional<T> run_legacy(Spliterator<T>& sp,
                            const terminals::Reduce<Op>& term, bool parallel,
                            const ExecutionConfig& cfg,
                            const ExecutionPlan* plan) {
  return evaluate_reduce(sp, term.op, parallel, cfg, plan);
}

template <typename T, typename Fn>
void run_legacy(Spliterator<T>& sp, const terminals::ForEach<Fn>& term,
                bool parallel, const ExecutionConfig& cfg,
                const ExecutionPlan* plan) {
  evaluate_for_each(sp, term.fn, parallel, cfg, plan);
}

template <typename T>
std::uint64_t run_legacy(Spliterator<T>& sp, const terminals::Count&,
                         bool parallel, const ExecutionConfig& cfg,
                         const ExecutionPlan* plan) {
  return evaluate_count(sp, parallel, cfg, plan);
}

// Short-circuit terminals: the exact pull loops the Stream terminals ran
// before the unified dispatch — sequential, stopping at the first
// deciding element. The fused sinks above must stay consumption-depth
// identical to these.

template <typename T, typename Pred>
bool run_legacy(Spliterator<T>& sp, const terminals::AnyMatch<Pred>& term,
                bool /*parallel*/, const ExecutionConfig& /*cfg*/,
                const ExecutionPlan* /*plan*/) {
  bool found = false;
  while (!found && sp.try_advance([&](const T& value) {
    if (term.pred(value)) found = true;
  })) {
  }
  return found;
}

template <typename T, typename Pred>
bool run_legacy(Spliterator<T>& sp, const terminals::AllMatch<Pred>& term,
                bool /*parallel*/, const ExecutionConfig& /*cfg*/,
                const ExecutionPlan* /*plan*/) {
  bool ok = true;
  while (ok && sp.try_advance([&](const T& value) {
    if (!term.pred(value)) ok = false;
  })) {
  }
  return ok;
}

template <typename T, typename Pred>
bool run_legacy(Spliterator<T>& sp, const terminals::NoneMatch<Pred>& term,
                bool /*parallel*/, const ExecutionConfig& /*cfg*/,
                const ExecutionPlan* /*plan*/) {
  bool found = false;
  while (!found && sp.try_advance([&](const T& value) {
    if (term.pred(value)) found = true;
  })) {
  }
  return !found;
}

template <typename T>
std::optional<T> run_legacy(Spliterator<T>& sp, const terminals::FindFirst&,
                            bool /*parallel*/, const ExecutionConfig& /*cfg*/,
                            const ExecutionPlan* /*plan*/) {
  std::optional<T> out;
  sp.try_advance([&](const T& value) { out = value; });
  return out;
}

}  // namespace detail

/// THE terminal entry point: plan, record, execute. plan_pipeline makes
/// every admission decision (fusion, DPS, grain, drive, kernel) in one
/// place; this function dispatches on its verdicts — run_fused when the
/// chain stripped, run_legacy over the untouched wrappers otherwise.
/// Used by every dynamic Stream terminal; the typed static pipeline
/// routes through evaluate_fused below with its compiled stage stack
/// appended, passing PlanOrigin::kStatic (or kStaticFallback back here).
template <typename T, typename Term>
auto evaluate(std::unique_ptr<Spliterator<T>>& sp, const Term& term,
              bool parallel, const ExecutionConfig& cfg = {},
              PlanOrigin origin = PlanOrigin::kDynamic) {
  PLS_CHECK(sp != nullptr, "evaluate requires a source");
  using Traits = detail::TerminalTraits<T, Term>;
  auto planned =
      plan_pipeline<T>(sp, Traits::kind, Traits::sized_collector,
                       Traits::chunk_collector, parallel, cfg, origin);
  record_plan(planned.plan);
  // Scope declared after `planned` (whose plan it captures) and before
  // the dispatch: its destructor fires once the terminal's result is
  // materialized, appending one RunRecord covering the full run.
  RunScope run_scope(planned.plan);
  if (planned.fused) {
    return detail::run_fused<T>(*planned.fused, term, parallel, cfg,
                                planned.plan);
  }
  return detail::run_legacy<T>(*sp, term, parallel, cfg, &planned.plan);
}

/// Evaluate a terminal over an already-stripped FusedPipeline whose output
/// element type is T. The static pipeline calls this after appending its
/// StaticChainStage; the plan is derived from the fused shape
/// (plan_fused_pipeline) so the routing (DPS admission, leaf vs tree,
/// instrumentation) is byte-for-byte the dynamic fused path's.
template <typename T, typename Term>
auto evaluate_fused(FusedPipeline& fused, const Term& term, bool parallel,
                    const ExecutionConfig& cfg = {},
                    PlanOrigin origin = PlanOrigin::kStatic) {
  using Traits = detail::TerminalTraits<T, Term>;
  ExecutionPlan plan =
      plan_fused_pipeline(fused, Traits::kind, Traits::sized_collector,
                          Traits::chunk_collector, parallel, cfg, origin);
  record_plan(plan);
  RunScope run_scope(plan);
  return detail::run_fused<T>(fused, term, parallel, cfg, plan);
}

}  // namespace pls::streams
