// Terminal-operation evaluator: sequential and fork-join parallel.
//
// Parallel evaluation mirrors Java's: the spliterator is split recursively
// until chunks reach a target size (estimate / (parallelism * 4) by
// default, as in AbstractTask.suggestTargetSize), each leaf chunk is
// reduced sequentially into a fresh container from the collector's
// supplier, and containers are merged pairwise with the combiner on the way
// up — the divide-and-conquer template the paper builds PowerList functions
// on. try_split returns the *prefix*, so the left child of every fork is
// the earlier half: combining left <- right preserves encounter order for
// non-commutative combiners.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "forkjoin/pool.hpp"
#include "observe/counters.hpp"
#include "observe/trace.hpp"
#include "streams/collector.hpp"
#include "streams/spliterator.hpp"
#include "support/assert.hpp"

namespace pls::streams {

/// Where and how a terminal operation executes.
struct ExecutionConfig {
  /// Pool for parallel evaluation; nullptr selects ForkJoinPool::common().
  forkjoin::ForkJoinPool* pool = nullptr;
  /// Split until chunks are at most this size; 0 selects the Java-style
  /// default, estimate_size / (4 * parallelism).
  std::uint64_t min_chunk = 0;

  forkjoin::ForkJoinPool& effective_pool() const {
    return pool != nullptr ? *pool : forkjoin::ForkJoinPool::common();
  }

  std::uint64_t target_size(std::uint64_t estimate, unsigned parallelism) const {
    if (min_chunk != 0) return min_chunk;
    const std::uint64_t t = estimate / (4ull * parallelism);
    return t > 0 ? t : 1;
  }
};

namespace detail {

/// Exact remaining-element count for SIZED sources, 0 (uncounted) for
/// unsized ones — keeps the observe hooks free of per-element work.
template <typename T>
std::uint64_t countable_size(const Spliterator<T>& sp) {
  return sp.has(kSized) ? sp.estimate_size() : 0;
}

template <typename T, typename C>
typename C::accumulation_type collect_leaf(Spliterator<T>& sp, const C& c) {
  const std::uint64_t elems = countable_size(sp);
  observe::Span span(observe::EventKind::kAccumulate, elems);
  observe::local_counters().on_leaf(elems);
  auto acc = c.supply();
  sp.for_each_remaining(
      [&](const T& value) { c.accumulate(acc, value); });
  return acc;
}

template <typename T, typename C>
typename C::accumulation_type collect_tree(forkjoin::ForkJoinPool& pool,
                                           Spliterator<T>& sp, const C& c,
                                           std::uint64_t target,
                                           unsigned depth = 0) {
  using A = typename C::accumulation_type;
  if (sp.estimate_size() <= target) return collect_leaf(sp, c);
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    return sp.try_split();
  }();
  if (!prefix) return collect_leaf(sp, c);
  observe::local_counters().on_split(depth);
  std::optional<A> left;
  std::optional<A> right;
  pool.invoke_two(
      [&] { left.emplace(collect_tree(pool, *prefix, c, target, depth + 1)); },
      [&] { right.emplace(collect_tree(pool, sp, c, target, depth + 1)); });
  {
    observe::Span span(observe::EventKind::kCombine, depth);
    c.combine(*left, *right);
  }
  observe::local_counters().on_combine();
  return std::move(*left);
}

template <typename T, typename Op>
std::optional<T> reduce_leaf(Spliterator<T>& sp, const Op& op) {
  std::optional<T> acc;
  sp.for_each_remaining([&](const T& value) {
    if (acc.has_value()) {
      *acc = op(std::move(*acc), value);
    } else {
      acc = value;
    }
  });
  return acc;
}

template <typename T, typename Op>
std::optional<T> reduce_tree(forkjoin::ForkJoinPool& pool, Spliterator<T>& sp,
                             const Op& op, std::uint64_t target,
                             unsigned depth = 0) {
  if (sp.estimate_size() <= target) {
    observe::local_counters().on_leaf(countable_size(sp));
    return reduce_leaf(sp, op);
  }
  auto prefix = sp.try_split();
  if (!prefix) {
    observe::local_counters().on_leaf(countable_size(sp));
    return reduce_leaf(sp, op);
  }
  observe::local_counters().on_split(depth);
  std::optional<T> left;
  std::optional<T> right;
  pool.invoke_two(
      [&] { left = reduce_tree(pool, *prefix, op, target, depth + 1); },
      [&] { right = reduce_tree(pool, sp, op, target, depth + 1); });
  if (left.has_value() && right.has_value()) {
    observe::local_counters().on_combine();
    return op(std::move(*left), std::move(*right));
  }
  return left.has_value() ? std::move(left) : std::move(right);
}

template <typename T, typename Fn>
void for_each_tree(forkjoin::ForkJoinPool& pool, Spliterator<T>& sp,
                   const Fn& fn, std::uint64_t target, unsigned depth = 0) {
  if (sp.estimate_size() <= target) {
    observe::local_counters().on_leaf(countable_size(sp));
    sp.for_each_remaining([&](const T& value) { fn(value); });
    return;
  }
  auto prefix = sp.try_split();
  if (!prefix) {
    observe::local_counters().on_leaf(countable_size(sp));
    sp.for_each_remaining([&](const T& value) { fn(value); });
    return;
  }
  observe::local_counters().on_split(depth);
  pool.invoke_two([&] { for_each_tree(pool, *prefix, fn, target, depth + 1); },
                  [&] { for_each_tree(pool, sp, fn, target, depth + 1); });
}

template <typename T>
std::uint64_t count_tree(forkjoin::ForkJoinPool& pool, Spliterator<T>& sp,
                         std::uint64_t target, unsigned depth = 0) {
  if (sp.estimate_size() <= target) {
    std::uint64_t n = 0;
    sp.for_each_remaining([&](const T&) { ++n; });
    observe::local_counters().on_leaf(n);
    return n;
  }
  auto prefix = sp.try_split();
  if (!prefix) {
    std::uint64_t n = 0;
    sp.for_each_remaining([&](const T&) { ++n; });
    observe::local_counters().on_leaf(n);
    return n;
  }
  observe::local_counters().on_split(depth);
  std::uint64_t left = 0, right = 0;
  pool.invoke_two([&] { left = count_tree(pool, *prefix, target, depth + 1); },
                  [&] { right = count_tree(pool, sp, target, depth + 1); });
  return left + right;
}

}  // namespace detail

/// Run a full mutable reduction over the spliterator.
template <typename T, typename C>
typename C::result_type evaluate_collect(Spliterator<T>& sp, const C& c,
                                         bool parallel,
                                         const ExecutionConfig& cfg = {}) {
  if (!parallel) {
    return c.finish(detail::collect_leaf(sp, c));
  }
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      cfg.target_size(sp.estimate_size(), pool.parallelism());
  auto acc = pool.run(
      [&] { return detail::collect_tree(pool, sp, c, target); });
  return c.finish(std::move(acc));
}

/// Reduce with an associative binary operator; empty source gives nullopt.
template <typename T, typename Op>
std::optional<T> evaluate_reduce(Spliterator<T>& sp, const Op& op,
                                 bool parallel,
                                 const ExecutionConfig& cfg = {}) {
  if (!parallel) return detail::reduce_leaf(sp, op);
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      cfg.target_size(sp.estimate_size(), pool.parallelism());
  return pool.run([&] { return detail::reduce_tree(pool, sp, op, target); });
}

/// Apply `fn` to every element. In parallel mode `fn` must be safe to call
/// concurrently; no encounter-order guarantee (as in Java's forEach).
template <typename T, typename Fn>
void evaluate_for_each(Spliterator<T>& sp, const Fn& fn, bool parallel,
                       const ExecutionConfig& cfg = {}) {
  if (!parallel) {
    sp.for_each_remaining([&](const T& value) { fn(value); });
    return;
  }
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      cfg.target_size(sp.estimate_size(), pool.parallelism());
  pool.run([&] { detail::for_each_tree(pool, sp, fn, target); });
}

/// Count elements (traverses; exact regardless of SIZED).
template <typename T>
std::uint64_t evaluate_count(Spliterator<T>& sp, bool parallel,
                             const ExecutionConfig& cfg = {}) {
  if (!parallel) {
    std::uint64_t n = 0;
    sp.for_each_remaining([&](const T&) { ++n; });
    return n;
  }
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      cfg.target_size(sp.estimate_size(), pool.parallelism());
  return pool.run([&] { return detail::count_tree(pool, sp, target); });
}

}  // namespace pls::streams
