// Terminal-operation evaluator: sequential and fork-join parallel.
//
// Parallel evaluation mirrors Java's: the spliterator is split recursively
// until chunks reach a target size (estimate / (parallelism * 4) by
// default, as in AbstractTask.suggestTargetSize), each leaf chunk is
// reduced sequentially into a fresh container from the collector's
// supplier, and containers are merged pairwise with the combiner on the way
// up — the divide-and-conquer template the paper builds PowerList functions
// on. try_split returns the *prefix*, so the left child of every fork is
// the earlier half: combining left <- right preserves encounter order for
// non-commutative combiners.
//
// collect has a second execution model, destination-passing style (DPS):
// when the collector is a sized sink (streams/sized_sink.hpp) and the
// source is SIZED|SUBSIZED, windowed (WindowedSource) and power-of-two
// sized, evaluate_collect allocates the result exactly once, threads each
// chunk's destination window down the split tree, and every leaf writes
// its elements straight to their final positions — the combine phase
// becomes a no-op join, dropping combine-phase data movement from
// O(n log n) to zero (docs/execution.md). Sources or collectors that do
// not qualify take the supplier/combiner path unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "forkjoin/pool.hpp"
#include "observe/counters.hpp"
#include "observe/critical_path.hpp"
#include "observe/histogram.hpp"
#include "observe/trace.hpp"
#include "streams/collector.hpp"
#include "streams/fusion.hpp"
#include "streams/sink.hpp"
#include "streams/sized_sink.hpp"
#include "streams/spliterator.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace pls::streams {

/// Where and how a terminal operation executes. The chainable with_*
/// setters below are THE execution-config builder: Stream<T>'s with_*
/// methods and pls::session::stream_config() both delegate here, so every
/// knob exists exactly once and round-trips losslessly between surfaces.
struct ExecutionConfig {
  /// Pool for parallel evaluation; nullptr selects ForkJoinPool::common().
  forkjoin::ForkJoinPool* pool = nullptr;
  /// Split until chunks are at most this size; 0 selects the Java-style
  /// default, estimate_size / (4 * parallelism).
  std::uint64_t min_chunk = 0;
  /// Permit the destination-passing (sized-sink) collect path when source
  /// and collector qualify. Off forces the supplier/combiner path — used
  /// by the fallback-equivalence tests and the A/B benches.
  bool sized_sink = true;
  /// Permit the push-mode fusion engine for terminal evaluation when the
  /// pipeline qualifies (streams/fusion.hpp). Off forces the wrapper
  /// (pull-mode) walk — the differential-testing and A/B-bench toggle.
  bool fusion = true;

  ExecutionConfig& with_pool(forkjoin::ForkJoinPool& p) {
    pool = &p;
    return *this;
  }
  ExecutionConfig& with_min_chunk(std::uint64_t n) {
    min_chunk = n;
    return *this;
  }
  ExecutionConfig& with_sized_sink(bool enabled) {
    sized_sink = enabled;
    return *this;
  }
  ExecutionConfig& with_fusion(bool enabled) {
    fusion = enabled;
    return *this;
  }

  forkjoin::ForkJoinPool& effective_pool() const {
    return pool != nullptr ? *pool : forkjoin::ForkJoinPool::common();
  }

  std::uint64_t target_size(std::uint64_t estimate, unsigned parallelism) const {
    if (min_chunk != 0) return min_chunk;
    const std::uint64_t t = estimate / (4ull * parallelism);
    return t > 0 ? t : 1;
  }
};

/// Terminal-operation descriptors for the unified evaluate() dispatch:
/// one value type per terminal kind, holding the operation by reference
/// (descriptors live only for the duration of the evaluate call). Both the
/// dynamic Stream terminals and the typed static pipeline
/// (streams/static_fusion.hpp) funnel through these, so fused, legacy and
/// destination-passing routing exists exactly once.
namespace terminals {

template <typename C>
struct Collect {
  const C& collector;
};

template <typename Op>
struct Reduce {
  const Op& op;
};

template <typename Fn>
struct ForEach {
  const Fn& fn;
};

struct Count {};

template <typename C>
constexpr Collect<C> collect(const C& c) {
  return {c};
}
template <typename Op>
constexpr Reduce<Op> reduce(const Op& op) {
  return {op};
}
template <typename Fn>
constexpr ForEach<Fn> for_each(const Fn& fn) {
  return {fn};
}
constexpr Count count() { return {}; }

}  // namespace terminals

namespace detail {

/// Exact remaining-element count for SIZED sources, 0 (uncounted) for
/// unsized ones — keeps the observe hooks free of per-element work.
template <typename T>
std::uint64_t countable_size(const Spliterator<T>& sp) {
  return sp.has(kSized) ? sp.estimate_size() : 0;
}

template <typename T, typename C>
typename C::accumulation_type collect_leaf(Spliterator<T>& sp, const C& c,
                                           observe::CpNode* cp = nullptr) {
  const std::uint64_t elems = countable_size(sp);
  observe::Span span(observe::EventKind::kAccumulate, elems);
  observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
  observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
  observe::cp_add_elements(cp, elems);
  observe::local_counters().on_leaf(elems);
  auto acc = c.supply();
  observe::local_counters().on_allocation();
  sp.for_each_remaining(
      [&](const T& value) { c.accumulate(acc, value); });
  return acc;
}

template <typename T, typename C>
typename C::accumulation_type collect_tree(forkjoin::ForkJoinPool& pool,
                                           Spliterator<T>& sp, const C& c,
                                           std::uint64_t target,
                                           unsigned depth = 0,
                                           observe::CpNode* cp = nullptr) {
  using A = typename C::accumulation_type;
  if (sp.estimate_size() <= target) return collect_leaf(sp, c, cp);
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return sp.try_split();
  }();
  if (!prefix) return collect_leaf(sp, c, cp);
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  std::optional<A> left;
  std::optional<A> right;
  pool.invoke_two(
      [&, cl = cl] {
        left.emplace(collect_tree(pool, *prefix, c, target, depth + 1, cl));
      },
      [&, cr = cr] {
        right.emplace(collect_tree(pool, sp, c, target, depth + 1, cr));
      });
  {
    observe::Span span(observe::EventKind::kCombine, depth);
    observe::CpScope phase(cp, observe::CpPhase::kCombine);
    observe::LatencyTimer combine_timer(observe::Metric::kCombineRun);
    c.combine(*left, *right);
  }
  observe::local_counters().on_combine();
  return std::move(*left);
}

/// Admission check for the destination-passing collect: the source must be
/// exactly sized, keep exact sizes through splits, name a destination
/// window consistent with its size, and hold a power of two elements (the
/// shape whose tie/zip splits the window arithmetic mirrors; anything else
/// collects through the supplier/combiner path).
template <typename T>
std::optional<OutputWindow> sized_sink_window(const Spliterator<T>& sp) {
  if (!sp.has(kSized | kSubsized)) return std::nullopt;
  auto w = output_window_of(sp);
  if (!w.has_value()) return std::nullopt;
  if (w->count != sp.estimate_size()) return std::nullopt;
  if (!is_power_of_two(w->count)) return std::nullopt;
  return w;
}

template <typename T, typename C>
  requires SizedSinkCollector<C, T>
void collect_into_leaf(Spliterator<T>& sp, const C& c,
                       typename C::sized_accumulation_type& sink,
                       const OutputWindow& root,
                       observe::CpNode* cp = nullptr) {
  const auto w = output_window_of(sp);
  PLS_CHECK(w.has_value(),
            "windowed SUBSIZED source split into a non-windowed chunk");
  // Rebase this chunk's window against the root's: the source may itself
  // be a strided sub-window (e.g. a zip-split product), but the result
  // buffer is indexed 0..root.count in root strides.
  const std::uint64_t base = (w->start - root.start) / root.incr;
  const std::uint64_t step = w->incr / root.incr;
  PLS_CHECK(w->count == 0 || base + (w->count - 1) * step < root.count,
            "destination window exceeds the result buffer");
  const std::uint64_t elems = countable_size(sp);
  observe::Span span(observe::EventKind::kAccumulate, elems);
  observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
  observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
  observe::cp_add_elements(cp, elems);
  observe::local_counters().on_leaf(elems);
  std::uint64_t k = 0;
  sp.for_each_remaining([&](const T& value) {
    c.accumulate_at(sink, base + k * step, value);
    ++k;
  });
  PLS_CHECK(k == w->count, "chunk yielded a different count than its window");
}

template <typename T, typename C>
  requires SizedSinkCollector<C, T>
void collect_into_tree(forkjoin::ForkJoinPool& pool, Spliterator<T>& sp,
                       const C& c, typename C::sized_accumulation_type& sink,
                       const OutputWindow& root, std::uint64_t target,
                       unsigned depth = 0, observe::CpNode* cp = nullptr) {
  if (sp.estimate_size() <= target) {
    collect_into_leaf(sp, c, sink, root, cp);
    return;
  }
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return sp.try_split();
  }();
  if (!prefix) {
    collect_into_leaf(sp, c, sink, root, cp);
    return;
  }
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  pool.invoke_two(
      [&, cl = cl] {
        collect_into_tree(pool, *prefix, c, sink, root, target, depth + 1, cl);
      },
      [&, cr = cr] {
        collect_into_tree(pool, sp, c, sink, root, target, depth + 1, cr);
      });
  // The join is a true no-op: both children wrote disjoint windows of
  // `sink`, so nothing is combined, counted, or moved on the way up.
}

template <typename T, typename Op>
std::optional<T> reduce_leaf(Spliterator<T>& sp, const Op& op) {
  std::optional<T> acc;
  sp.for_each_remaining([&](const T& value) {
    if (acc.has_value()) {
      *acc = op(std::move(*acc), value);
    } else {
      acc = value;
    }
  });
  return acc;
}

template <typename T, typename Op>
std::optional<T> reduce_tree(forkjoin::ForkJoinPool& pool, Spliterator<T>& sp,
                             const Op& op, std::uint64_t target,
                             unsigned depth = 0,
                             observe::CpNode* cp = nullptr) {
  if (sp.estimate_size() <= target) {
    observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
    observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
    observe::cp_add_elements(cp, countable_size(sp));
    observe::local_counters().on_leaf(countable_size(sp));
    return reduce_leaf(sp, op);
  }
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return sp.try_split();
  }();
  if (!prefix) {
    observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
    observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
    observe::cp_add_elements(cp, countable_size(sp));
    observe::local_counters().on_leaf(countable_size(sp));
    return reduce_leaf(sp, op);
  }
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  std::optional<T> left;
  std::optional<T> right;
  pool.invoke_two(
      [&, cl = cl] { left = reduce_tree(pool, *prefix, op, target, depth + 1, cl); },
      [&, cr = cr] { right = reduce_tree(pool, sp, op, target, depth + 1, cr); });
  if (left.has_value() && right.has_value()) {
    observe::CpScope phase(cp, observe::CpPhase::kCombine);
    observe::LatencyTimer combine_timer(observe::Metric::kCombineRun);
    observe::local_counters().on_combine();
    return op(std::move(*left), std::move(*right));
  }
  return left.has_value() ? std::move(left) : std::move(right);
}

template <typename T, typename Fn>
void for_each_tree(forkjoin::ForkJoinPool& pool, Spliterator<T>& sp,
                   const Fn& fn, std::uint64_t target, unsigned depth = 0,
                   observe::CpNode* cp = nullptr) {
  if (sp.estimate_size() <= target) {
    observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
    observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
    observe::cp_add_elements(cp, countable_size(sp));
    observe::local_counters().on_leaf(countable_size(sp));
    sp.for_each_remaining([&](const T& value) { fn(value); });
    return;
  }
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return sp.try_split();
  }();
  if (!prefix) {
    observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
    observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
    observe::cp_add_elements(cp, countable_size(sp));
    observe::local_counters().on_leaf(countable_size(sp));
    sp.for_each_remaining([&](const T& value) { fn(value); });
    return;
  }
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  pool.invoke_two(
      [&, cl = cl] { for_each_tree(pool, *prefix, fn, target, depth + 1, cl); },
      [&, cr = cr] { for_each_tree(pool, sp, fn, target, depth + 1, cr); });
}

template <typename T>
std::uint64_t count_tree(forkjoin::ForkJoinPool& pool, Spliterator<T>& sp,
                         std::uint64_t target, unsigned depth = 0,
                         observe::CpNode* cp = nullptr) {
  if (sp.estimate_size() <= target) {
    observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
    observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
    std::uint64_t n = 0;
    sp.for_each_remaining([&](const T&) { ++n; });
    observe::cp_add_elements(cp, n);
    observe::local_counters().on_leaf(n);
    return n;
  }
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return sp.try_split();
  }();
  if (!prefix) {
    observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
    observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
    std::uint64_t n = 0;
    sp.for_each_remaining([&](const T&) { ++n; });
    observe::cp_add_elements(cp, n);
    observe::local_counters().on_leaf(n);
    return n;
  }
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  std::uint64_t left = 0, right = 0;
  pool.invoke_two(
      [&, cl = cl] { left = count_tree(pool, *prefix, target, depth + 1, cl); },
      [&, cr = cr] { right = count_tree(pool, sp, target, depth + 1, cr); });
  return left + right;
}

// ---- fused (push-mode) evaluation ------------------------------------
//
// The fused walks mirror the wrapper walks exactly — same split policy,
// same Span/CpScope/LatencyTimer/counter instrumentation at the same
// points — but each leaf composes one sink chain and runs one push loop
// instead of traversing the wrapper pipeline per element. Every fused
// leaf additionally bumps the fused_leaves counter so reports and the
// critical-path profiler attribute the win (leaf_chunks - fused_leaves
// is the legacy count).

/// Terminal sink feeding a classic collector's accumulator. Templated on
/// the concrete collector so final collectors devirtualise in the chunk
/// loop; collectors exposing a chunk fold (ChunkAccumulatingCollector —
/// the SIMD kernel hook) get whole contiguous chunks instead of the
/// per-element loop.
template <typename T, typename C>
class CollectorSink final : public Sink<T> {
 public:
  CollectorSink(const C& c, typename C::accumulation_type& acc)
      : c_(c), acc_(acc) {}

  void accept(const T& value) override { c_.accumulate(acc_, value); }

  void accept_chunk(const T* values, std::size_t n) override {
    if constexpr (ChunkAccumulatingCollector<C, T>) {
      c_.accumulate_chunk(acc_, values, n);
    } else {
      for (std::size_t i = 0; i < n; ++i) c_.accumulate(acc_, values[i]);
    }
  }

 private:
  const C& c_;
  typename C::accumulation_type& acc_;
};

/// Terminal sink of the fused destination-passing collect: writes element
/// k of this leaf to final position base + k * step of the shared sized
/// sink (the same rebasing arithmetic as collect_into_leaf).
template <typename T, typename C>
class DpsSink final : public Sink<T> {
 public:
  DpsSink(const C& c, typename C::sized_accumulation_type& sink,
          std::uint64_t base, std::uint64_t step)
      : c_(c), sink_(sink), base_(base), step_(step) {}

  void accept(const T& value) override {
    c_.accumulate_at(sink_, base_ + k_ * step_, value);
    ++k_;
  }

  void accept_chunk(const T* values, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) {
      c_.accumulate_at(sink_, base_ + k_ * step_, values[i]);
      ++k_;
    }
  }

  std::uint64_t written() const noexcept { return k_; }

 private:
  const C& c_;
  typename C::sized_accumulation_type& sink_;
  std::uint64_t base_;
  std::uint64_t step_;
  std::uint64_t k_ = 0;
};

template <typename T, typename Op>
class ReduceSink final : public Sink<T> {
 public:
  ReduceSink(const Op& op, std::optional<T>& acc) : op_(op), acc_(acc) {}

  void accept(const T& value) override {
    if (acc_.has_value()) {
      *acc_ = op_(std::move(*acc_), value);
    } else {
      acc_ = value;
    }
  }

  void accept_chunk(const T* values, std::size_t n) override {
    std::size_t i = 0;
    if (!acc_.has_value() && n > 0) acc_ = values[i++];
    for (; i < n; ++i) *acc_ = op_(std::move(*acc_), values[i]);
  }

 private:
  const Op& op_;
  std::optional<T>& acc_;
};

template <typename T, typename Fn>
class ForEachSink final : public Sink<T> {
 public:
  explicit ForEachSink(const Fn& fn) : fn_(fn) {}

  void accept(const T& value) override { fn_(value); }

  void accept_chunk(const T* values, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) fn_(values[i]);
  }

 private:
  const Fn& fn_;
};

template <typename T>
class CountSink final : public Sink<T> {
 public:
  void accept(const T&) override { ++n_; }
  void accept_chunk(const T*, std::size_t n) override { n_ += n; }
  std::uint64_t count() const noexcept { return n_; }

 private:
  std::uint64_t n_ = 0;
};

/// Leaf-entry bookkeeping shared by every fused leaf: the same counter and
/// critical-path feeds as the wrapper leaves (countable_estimate mirrors
/// countable_size of the outermost wrapper), plus the fused tally.
inline std::uint64_t fused_leaf_enter(const FusedPipeline& fp,
                                      observe::CpNode* cp) {
  const std::uint64_t elems = fp.countable_estimate();
  observe::cp_add_elements(cp, elems);
  observe::local_counters().on_leaf(elems);
  observe::local_counters().on_fused_leaf();
  return elems;
}

template <typename T, typename C>
typename C::accumulation_type fused_collect_leaf(
    FusedPipeline& fp, const C& c, observe::CpNode* cp = nullptr) {
  const std::uint64_t elems = fp.countable_estimate();
  observe::Span span(observe::EventKind::kAccumulate, elems);
  observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
  observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
  fused_leaf_enter(fp, cp);
  auto acc = c.supply();
  observe::local_counters().on_allocation();
  CollectorSink<T, C> sink(c, acc);
  fp.drive(sink);
  return acc;
}

template <typename T, typename C>
typename C::accumulation_type fused_collect_tree(
    forkjoin::ForkJoinPool& pool, FusedPipeline& fp, const C& c,
    std::uint64_t target, unsigned depth = 0,
    observe::CpNode* cp = nullptr) {
  using A = typename C::accumulation_type;
  if (fp.estimate_size() <= target) return fused_collect_leaf<T>(fp, c, cp);
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return fp.try_split();
  }();
  if (!prefix) return fused_collect_leaf<T>(fp, c, cp);
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  std::optional<A> left;
  std::optional<A> right;
  pool.invoke_two(
      [&, cl = cl] {
        left.emplace(
            fused_collect_tree<T>(pool, *prefix, c, target, depth + 1, cl));
      },
      [&, cr = cr] {
        right.emplace(
            fused_collect_tree<T>(pool, fp, c, target, depth + 1, cr));
      });
  {
    observe::Span span(observe::EventKind::kCombine, depth);
    observe::CpScope phase(cp, observe::CpPhase::kCombine);
    observe::LatencyTimer combine_timer(observe::Metric::kCombineRun);
    c.combine(*left, *right);
  }
  observe::local_counters().on_combine();
  return std::move(*left);
}

template <typename T, typename C>
  requires SizedSinkCollector<C, T>
void fused_collect_into_leaf(FusedPipeline& fp, const C& c,
                             typename C::sized_accumulation_type& sink,
                             const OutputWindow& root,
                             observe::CpNode* cp = nullptr) {
  const auto w = fp.source_window();
  PLS_CHECK(w.has_value(),
            "windowed fused source split into a non-windowed chunk");
  const std::uint64_t base = (w->start - root.start) / root.incr;
  const std::uint64_t step = w->incr / root.incr;
  PLS_CHECK(w->count == 0 || base + (w->count - 1) * step < root.count,
            "destination window exceeds the result buffer");
  const std::uint64_t elems = fp.countable_estimate();
  observe::Span span(observe::EventKind::kAccumulate, elems);
  observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
  observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
  fused_leaf_enter(fp, cp);
  DpsSink<T, C> s(c, sink, base, step);
  fp.drive(s);
  PLS_CHECK(s.written() == w->count,
            "fused chunk yielded a different count than its window");
}

template <typename T, typename C>
  requires SizedSinkCollector<C, T>
void fused_collect_into_tree(forkjoin::ForkJoinPool& pool, FusedPipeline& fp,
                             const C& c,
                             typename C::sized_accumulation_type& sink,
                             const OutputWindow& root, std::uint64_t target,
                             unsigned depth = 0,
                             observe::CpNode* cp = nullptr) {
  if (fp.estimate_size() <= target) {
    fused_collect_into_leaf<T>(fp, c, sink, root, cp);
    return;
  }
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return fp.try_split();
  }();
  if (!prefix) {
    fused_collect_into_leaf<T>(fp, c, sink, root, cp);
    return;
  }
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  pool.invoke_two(
      [&, cl = cl] {
        fused_collect_into_tree<T>(pool, *prefix, c, sink, root, target,
                                   depth + 1, cl);
      },
      [&, cr = cr] {
        fused_collect_into_tree<T>(pool, fp, c, sink, root, target,
                                   depth + 1, cr);
      });
}

template <typename T, typename Op>
std::optional<T> fused_reduce_leaf(FusedPipeline& fp, const Op& op,
                                   observe::CpNode* cp = nullptr) {
  observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
  observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
  fused_leaf_enter(fp, cp);
  std::optional<T> acc;
  ReduceSink<T, Op> sink(op, acc);
  fp.drive(sink);
  return acc;
}

template <typename T, typename Op>
std::optional<T> fused_reduce_tree(forkjoin::ForkJoinPool& pool,
                                   FusedPipeline& fp, const Op& op,
                                   std::uint64_t target, unsigned depth = 0,
                                   observe::CpNode* cp = nullptr) {
  if (fp.estimate_size() <= target) return fused_reduce_leaf<T>(fp, op, cp);
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return fp.try_split();
  }();
  if (!prefix) return fused_reduce_leaf<T>(fp, op, cp);
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  std::optional<T> left;
  std::optional<T> right;
  pool.invoke_two(
      [&, cl = cl] {
        left = fused_reduce_tree<T>(pool, *prefix, op, target, depth + 1, cl);
      },
      [&, cr = cr] {
        right = fused_reduce_tree<T>(pool, fp, op, target, depth + 1, cr);
      });
  if (left.has_value() && right.has_value()) {
    observe::CpScope phase(cp, observe::CpPhase::kCombine);
    observe::LatencyTimer combine_timer(observe::Metric::kCombineRun);
    observe::local_counters().on_combine();
    return op(std::move(*left), std::move(*right));
  }
  return left.has_value() ? std::move(left) : std::move(right);
}

template <typename T, typename Fn>
void fused_for_each_leaf(FusedPipeline& fp, const Fn& fn,
                         observe::CpNode* cp = nullptr) {
  observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
  observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
  fused_leaf_enter(fp, cp);
  ForEachSink<T, Fn> sink(fn);
  fp.drive(sink);
}

template <typename T, typename Fn>
void fused_for_each_tree(forkjoin::ForkJoinPool& pool, FusedPipeline& fp,
                         const Fn& fn, std::uint64_t target,
                         unsigned depth = 0, observe::CpNode* cp = nullptr) {
  if (fp.estimate_size() <= target) {
    fused_for_each_leaf<T>(fp, fn, cp);
    return;
  }
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return fp.try_split();
  }();
  if (!prefix) {
    fused_for_each_leaf<T>(fp, fn, cp);
    return;
  }
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  pool.invoke_two(
      [&, cl = cl] {
        fused_for_each_tree<T>(pool, *prefix, fn, target, depth + 1, cl);
      },
      [&, cr = cr] {
        fused_for_each_tree<T>(pool, fp, fn, target, depth + 1, cr);
      });
}

template <typename T>
std::uint64_t fused_count_leaf(FusedPipeline& fp,
                               observe::CpNode* cp = nullptr) {
  observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
  observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
  CountSink<T> sink;
  fp.drive(sink);
  const std::uint64_t n = sink.count();
  observe::cp_add_elements(cp, n);
  observe::local_counters().on_leaf(n);
  observe::local_counters().on_fused_leaf();
  return n;
}

template <typename T>
std::uint64_t fused_count_tree(forkjoin::ForkJoinPool& pool,
                               FusedPipeline& fp, std::uint64_t target,
                               unsigned depth = 0,
                               observe::CpNode* cp = nullptr) {
  if (fp.estimate_size() <= target) return fused_count_leaf<T>(fp, cp);
  auto prefix = [&] {
    observe::Span span(observe::EventKind::kSplit, depth);
    observe::CpScope phase(cp, observe::CpPhase::kSplit);
    return fp.try_split();
  }();
  if (!prefix) return fused_count_leaf<T>(fp, cp);
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  std::uint64_t left = 0, right = 0;
  pool.invoke_two(
      [&, cl = cl] {
        left = fused_count_tree<T>(pool, *prefix, target, depth + 1, cl);
      },
      [&, cr = cr] {
        right = fused_count_tree<T>(pool, fp, target, depth + 1, cr);
      });
  return left + right;
}

/// Admission for the fused destination-passing collect — the fused twin of
/// sized_sink_window. The chain must be 1:1 (so source position == result
/// position) and non-cancelling; the source must name a window matching
/// its size and hold a power of two elements, exactly like the wrapper
/// gate (wrappers admit through delegated windows, which only 1:1 stages
/// provide, so both gates admit the same pipelines).
inline std::optional<OutputWindow> fused_sink_window(
    const FusedPipeline& fp) {
  if (!fp.one_to_one() || fp.cancels()) return std::nullopt;
  auto w = fp.source_window();
  if (!w.has_value()) return std::nullopt;
  if (w->count != fp.estimate_size()) return std::nullopt;
  if (!is_power_of_two(w->count)) return std::nullopt;
  return w;
}

// ---- fused terminal dispatch -----------------------------------------
//
// One run_fused overload per terminal descriptor; T is the pipeline's
// output element type. These are the single home of the fused routing
// (DPS admission, leaf vs tree) shared by the dynamic evaluate() entry
// and the static pipeline, which appends its compiled stage stack and
// calls evaluate_fused directly.

template <typename T, typename C>
typename C::result_type run_fused(FusedPipeline& fused,
                                  const terminals::Collect<C>& term,
                                  bool parallel, const ExecutionConfig& cfg) {
  const C& c = term.collector;
  if constexpr (SizedSinkCollector<C, T>) {
    if (cfg.sized_sink) {
      if (auto root = fused_sink_window(fused)) {
        auto sink = c.supply_sized(root->count);
        if (!parallel) {
          fused_collect_into_leaf<T>(fused, c, sink, *root);
        } else {
          auto& pool = cfg.effective_pool();
          const std::uint64_t target =
              cfg.target_size(root->count, pool.parallelism());
          observe::CpNode* cp = observe::cp_new_root();
          pool.run([&] {
            fused_collect_into_tree<T>(pool, fused, c, sink, *root, target, 0,
                                       cp);
          });
        }
        return c.finish_sized(std::move(sink));
      }
    }
  }
  if (!parallel) {
    return c.finish(fused_collect_leaf<T>(fused, c));
  }
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      cfg.target_size(fused.estimate_size(), pool.parallelism());
  observe::CpNode* cp = observe::cp_new_root();
  auto acc = pool.run(
      [&] { return fused_collect_tree<T>(pool, fused, c, target, 0, cp); });
  return c.finish(std::move(acc));
}

template <typename T, typename Op>
std::optional<T> run_fused(FusedPipeline& fused,
                           const terminals::Reduce<Op>& term, bool parallel,
                           const ExecutionConfig& cfg) {
  if (!parallel) return fused_reduce_leaf<T>(fused, term.op);
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      cfg.target_size(fused.estimate_size(), pool.parallelism());
  observe::CpNode* cp = observe::cp_new_root();
  return pool.run([&] {
    return fused_reduce_tree<T>(pool, fused, term.op, target, 0, cp);
  });
}

template <typename T, typename Fn>
void run_fused(FusedPipeline& fused, const terminals::ForEach<Fn>& term,
               bool parallel, const ExecutionConfig& cfg) {
  if (!parallel) {
    fused_for_each_leaf<T>(fused, term.fn);
    return;
  }
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      cfg.target_size(fused.estimate_size(), pool.parallelism());
  observe::CpNode* cp = observe::cp_new_root();
  pool.run(
      [&] { fused_for_each_tree<T>(pool, fused, term.fn, target, 0, cp); });
}

template <typename T>
std::uint64_t run_fused(FusedPipeline& fused, const terminals::Count&,
                        bool parallel, const ExecutionConfig& cfg) {
  if (!parallel) return fused_count_leaf<T>(fused);
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      cfg.target_size(fused.estimate_size(), pool.parallelism());
  observe::CpNode* cp = observe::cp_new_root();
  return pool.run(
      [&] { return fused_count_tree<T>(pool, fused, target, 0, cp); });
}

}  // namespace detail

/// Run a mutable reduction in destination-passing style: acquire the sized
/// sink exactly once, walk the split tree threading each chunk's output
/// window, and let every leaf write its elements to their final positions.
/// `root` must be the window the source reported for the whole input
/// (evaluate_collect performs the admission checks and calls this; invoke
/// directly only when both are already known to hold). In parallel mode
/// the sink is written concurrently — always at distinct positions.
template <typename T, typename C>
  requires SizedSinkCollector<C, T>
typename C::result_type evaluate_collect_into(Spliterator<T>& sp, const C& c,
                                              const OutputWindow& root,
                                              bool parallel,
                                              const ExecutionConfig& cfg = {}) {
  auto sink = c.supply_sized(root.count);
  if (!parallel) {
    detail::collect_into_leaf(sp, c, sink, root);
  } else {
    auto& pool = cfg.effective_pool();
    const std::uint64_t target =
        cfg.target_size(root.count, pool.parallelism());
    observe::CpNode* cp = observe::cp_new_root();
    pool.run([&] {
      detail::collect_into_tree(pool, sp, c, sink, root, target, 0, cp);
    });
  }
  return c.finish_sized(std::move(sink));
}

/// Run a full mutable reduction over the spliterator. Prefers the
/// destination-passing path when the collector is a sized sink and the
/// source qualifies (see detail::sized_sink_window); otherwise — or when
/// cfg.sized_sink is off — runs the classic supplier/combiner reduction.
template <typename T, typename C>
typename C::result_type evaluate_collect(Spliterator<T>& sp, const C& c,
                                         bool parallel,
                                         const ExecutionConfig& cfg = {}) {
  if constexpr (SizedSinkCollector<C, T>) {
    if (cfg.sized_sink) {
      if (auto root = detail::sized_sink_window(sp)) {
        return evaluate_collect_into(sp, c, *root, parallel, cfg);
      }
    }
  }
  if (!parallel) {
    return c.finish(detail::collect_leaf(sp, c));
  }
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      cfg.target_size(sp.estimate_size(), pool.parallelism());
  observe::CpNode* cp = observe::cp_new_root();
  auto acc = pool.run(
      [&] { return detail::collect_tree(pool, sp, c, target, 0, cp); });
  return c.finish(std::move(acc));
}

/// Reduce with an associative binary operator; empty source gives nullopt.
template <typename T, typename Op>
std::optional<T> evaluate_reduce(Spliterator<T>& sp, const Op& op,
                                 bool parallel,
                                 const ExecutionConfig& cfg = {}) {
  if (!parallel) return detail::reduce_leaf(sp, op);
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      cfg.target_size(sp.estimate_size(), pool.parallelism());
  observe::CpNode* cp = observe::cp_new_root();
  return pool.run(
      [&] { return detail::reduce_tree(pool, sp, op, target, 0, cp); });
}

/// Apply `fn` to every element. In parallel mode `fn` must be safe to call
/// concurrently; no encounter-order guarantee (as in Java's forEach).
template <typename T, typename Fn>
void evaluate_for_each(Spliterator<T>& sp, const Fn& fn, bool parallel,
                       const ExecutionConfig& cfg = {}) {
  if (!parallel) {
    sp.for_each_remaining([&](const T& value) { fn(value); });
    return;
  }
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      cfg.target_size(sp.estimate_size(), pool.parallelism());
  observe::CpNode* cp = observe::cp_new_root();
  pool.run([&] { detail::for_each_tree(pool, sp, fn, target, 0, cp); });
}

/// Count elements (traverses; exact regardless of SIZED).
template <typename T>
std::uint64_t evaluate_count(Spliterator<T>& sp, bool parallel,
                             const ExecutionConfig& cfg = {}) {
  if (!parallel) {
    std::uint64_t n = 0;
    sp.for_each_remaining([&](const T&) { ++n; });
    return n;
  }
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      cfg.target_size(sp.estimate_size(), pool.parallelism());
  observe::CpNode* cp = observe::cp_new_root();
  return pool.run(
      [&] { return detail::count_tree(pool, sp, target, 0, cp); });
}

// ---- unified pipeline terminal dispatch ------------------------------
//
// Stream terminals hand their outermost spliterator here by owning
// pointer, together with a terminals:: descriptor naming the operation.
// When cfg.fusion is on and the whole chain admits (see fuse_pipeline),
// the wrappers are stripped into a FusedPipeline and the terminal runs
// push-mode; otherwise the pointer is left untouched and the wrapper
// pipeline runs through the legacy pull walks above. The legacy
// evaluate_* functions keep their exact behaviour for direct callers
// (powerlist executors, existing tests).

namespace detail {

// Legacy (pull-mode) routing, one overload per terminal descriptor.
// Defined after the evaluate_* functions they forward to.

template <typename T, typename C>
typename C::result_type run_legacy(Spliterator<T>& sp,
                                   const terminals::Collect<C>& term,
                                   bool parallel, const ExecutionConfig& cfg) {
  return evaluate_collect(sp, term.collector, parallel, cfg);
}

template <typename T, typename Op>
std::optional<T> run_legacy(Spliterator<T>& sp,
                            const terminals::Reduce<Op>& term, bool parallel,
                            const ExecutionConfig& cfg) {
  return evaluate_reduce(sp, term.op, parallel, cfg);
}

template <typename T, typename Fn>
void run_legacy(Spliterator<T>& sp, const terminals::ForEach<Fn>& term,
                bool parallel, const ExecutionConfig& cfg) {
  evaluate_for_each(sp, term.fn, parallel, cfg);
}

template <typename T>
std::uint64_t run_legacy(Spliterator<T>& sp, const terminals::Count&,
                         bool parallel, const ExecutionConfig& cfg) {
  return evaluate_count(sp, parallel, cfg);
}

}  // namespace detail

/// THE terminal entry point: evaluate `term` (a terminals:: descriptor)
/// over the pipeline rooted at `sp`, attempting fusion first and falling
/// back to the legacy wrapper walk. Used by every dynamic Stream terminal;
/// the typed static pipeline routes through evaluate_fused below with its
/// compiled stage stack appended. Replaces the four evaluate_*_pipeline
/// entry points (kept as deprecated thin aliases for one release).
template <typename T, typename Term>
auto evaluate(std::unique_ptr<Spliterator<T>>& sp, const Term& term,
              bool parallel, const ExecutionConfig& cfg = {}) {
  PLS_CHECK(sp != nullptr, "evaluate requires a source");
  if (cfg.fusion) {
    if (auto fused = fuse_pipeline<T>(sp)) {
      return detail::run_fused<T>(*fused, term, parallel, cfg);
    }
  }
  return detail::run_legacy<T>(*sp, term, parallel, cfg);
}

/// Evaluate a terminal over an already-stripped FusedPipeline whose output
/// element type is T. The static pipeline calls this after appending its
/// StaticChainStage; the routing (DPS admission, leaf vs tree,
/// instrumentation) is byte-for-byte the dynamic fused path's.
template <typename T, typename Term>
auto evaluate_fused(FusedPipeline& fused, const Term& term, bool parallel,
                    const ExecutionConfig& cfg = {}) {
  return detail::run_fused<T>(fused, term, parallel, cfg);
}

// ---- deprecated terminal entry points (thin aliases, one release) ----

template <typename T, typename C>
[[deprecated(
    "use evaluate(sp, terminals::collect(c), parallel, cfg)")]] typename C::
    result_type
    evaluate_collect_pipeline(std::unique_ptr<Spliterator<T>>& sp, const C& c,
                              bool parallel, const ExecutionConfig& cfg = {}) {
  return evaluate(sp, terminals::collect(c), parallel, cfg);
}

template <typename T, typename Op>
[[deprecated(
    "use evaluate(sp, terminals::reduce(op), parallel, cfg)")]] std::
    optional<T>
    evaluate_reduce_pipeline(std::unique_ptr<Spliterator<T>>& sp, const Op& op,
                             bool parallel, const ExecutionConfig& cfg = {}) {
  return evaluate(sp, terminals::reduce(op), parallel, cfg);
}

template <typename T, typename Fn>
[[deprecated(
    "use evaluate(sp, terminals::for_each(fn), parallel, cfg)")]] void
evaluate_for_each_pipeline(std::unique_ptr<Spliterator<T>>& sp, const Fn& fn,
                           bool parallel, const ExecutionConfig& cfg = {}) {
  evaluate(sp, terminals::for_each(fn), parallel, cfg);
}

template <typename T>
[[deprecated(
    "use evaluate(sp, terminals::count(), parallel, cfg)")]] std::uint64_t
evaluate_count_pipeline(std::unique_ptr<Spliterator<T>>& sp, bool parallel,
                        const ExecutionConfig& cfg = {}) {
  return evaluate(sp, terminals::count(), parallel, cfg);
}

}  // namespace pls::streams
