// Sized-sink collectors: the collector side of destination-passing
// collect (docs/execution.md).
//
// A classic Collector describes a mutable reduction as supplier /
// accumulator / combiner; the parallel evaluator then pays a combine
// phase that physically moves every element O(log n) times. A *sized
// sink* is the collector's opt-in to the destination-passing (DPS)
// alternative: when the source spliterator is SIZED|SUBSIZED, windowed
// (streams::WindowedSource) and power-of-two sized, the evaluator
// allocates the result once via supply_sized(n), every leaf writes its
// elements straight to their final positions via accumulate_at, the
// combine phase is a no-op join, and finish_sized maps the filled sink to
// the result. A collector advertises the capability simply by providing
// the four members below (detected by the SizedSinkCollector concept);
// collectors without them always take the supplier/combiner path.
//
// Contracts:
//  - supply_sized(n) returns a sink with exactly n addressable slots;
//  - accumulate_at(sink, i, v) writes the element for result position i;
//    the evaluator guarantees each position is written exactly once, and
//    concurrent calls always target distinct positions;
//  - finish_sized consumes a fully written sink.
#pragma once

#include <concepts>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "observe/counters.hpp"
#include "streams/collector.hpp"
#include "support/assert.hpp"
#include "support/sized_buffer.hpp"

namespace pls::streams {

/// Detects the sized-sink protocol on a collector for element type T.
template <typename C, typename T>
concept SizedSinkCollector =
    requires(const C& c, typename C::sized_accumulation_type& sink,
             std::uint64_t n, const T& value) {
      typename C::sized_accumulation_type;
      {
        c.supply_sized(n)
      } -> std::same_as<typename C::sized_accumulation_type>;
      c.accumulate_at(sink, n, value);
      {
        c.finish_sized(std::move(sink))
      } -> std::convertible_to<typename C::result_type>;
    };

/// The standard sized sink for vector-shaped results. For
/// default-constructible T the sink *is* the result vector — exactly one
/// allocation, a pointer-swap finish, zero element moves. Otherwise it is
/// an uninitialized SizedBuffer whose slots are placement-new'd and moved
/// into a vector once at the end — two allocations and a single O(n) move
/// pass, still far from the supplier/combiner path's O(n log n).
template <typename T>
class SizedVectorSink {
  static constexpr bool kDirect = std::is_default_constructible_v<T>;
  using Storage = std::conditional_t<kDirect, std::vector<T>, SizedBuffer<T>>;

 public:
  explicit SizedVectorSink(std::uint64_t n)
      : storage_(static_cast<std::size_t>(n)) {
    observe::local_counters().on_allocation();
  }

  std::uint64_t size() const noexcept { return storage_.size(); }

  void write(std::uint64_t i, const T& value) {
    if constexpr (kDirect) {
      storage_[static_cast<std::size_t>(i)] = value;
    } else {
      storage_.construct(static_cast<std::size_t>(i), value);
    }
  }

  void write(std::uint64_t i, T&& value) {
    if constexpr (kDirect) {
      storage_[static_cast<std::size_t>(i)] = std::move(value);
    } else {
      storage_.construct(static_cast<std::size_t>(i), std::move(value));
    }
  }

  /// The filled result. For the direct (vector) representation this is a
  /// pointer swap; for the buffered one it allocates the vector and moves
  /// each element once.
  std::vector<T> take() && {
    if constexpr (kDirect) {
      return std::move(storage_);
    } else {
      observe::local_counters().on_allocation();
      return std::move(storage_).take_vector();
    }
  }

 private:
  Storage storage_;
};

/// Collector gathering all elements into a std::vector in encounter
/// order. Implements both protocols: the classic supplier/accumulator/
/// combiner triple (with combine-phase movement instrumented) and the
/// sized sink that the destination-passing evaluator prefers.
template <typename T>
class VectorCollector final : public Collector<T, std::vector<T>> {
 public:
  std::vector<T> supply() const override { return {}; }

  void accumulate(std::vector<T>& acc, const T& value) const override {
    acc.push_back(value);
  }

  void combine(std::vector<T>& left, std::vector<T>& right) const override {
    observe::local_counters().on_bytes_moved(right.size() * sizeof(T));
    left.reserve(left.size() + right.size());
    left.insert(left.end(), std::make_move_iterator(right.begin()),
                std::make_move_iterator(right.end()));
    right.clear();
  }

  // ---- sized-sink protocol -------------------------------------------

  using sized_accumulation_type = SizedVectorSink<T>;

  SizedVectorSink<T> supply_sized(std::uint64_t n) const {
    return SizedVectorSink<T>(n);
  }

  void accumulate_at(SizedVectorSink<T>& sink, std::uint64_t index,
                     const T& value) const {
    sink.write(index, value);
  }

  std::vector<T> finish_sized(SizedVectorSink<T>&& sink) const {
    return std::move(sink).take();
  }
};

}  // namespace pls::streams
