// Collector<T, A, R>: mutable-reduction recipe (mirrors
// java.util.stream.Collector).
//
// A collector bundles the three functions of the collect template method —
// supplier (fresh result container), accumulator (fold one element into a
// container), combiner (merge the second container into the first) — plus
// an optional finisher mapping the accumulation type A to the result type
// R. The paper defines PowerList functions as classes implementing this
// interface (Section IV-B); PolynomialValueCollector in
// src/powerlist/collector_functions.hpp is the faithful port of its central
// example.
//
// Contracts (identical to Java's):
//  - supplier must return a fresh, independent container on every call
//    (parallel execution calls it once per leaf chunk);
//  - accumulator and combiner must be associative and non-interfering;
//  - combiner folds the *right* (later in encounter order) container into
//    the left one.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include "support/assert.hpp"

namespace pls::streams {

template <typename T, typename A, typename R = A>
class Collector {
 public:
  using input_type = T;
  using accumulation_type = A;
  using result_type = R;

  virtual ~Collector() = default;

  /// Create a fresh result container.
  virtual A supply() const = 0;

  /// Fold one element into a container (the leaf phase).
  virtual void accumulate(A& container, const T& value) const = 0;

  /// Merge `right` into `left`; `right` holds elements that come later in
  /// encounter order (the ascending/combining phase).
  virtual void combine(A& left, A& right) const = 0;

  /// Map the final accumulation to the result type. Default: identity
  /// (requires A convertible to R; collectors with distinct R must
  /// override). The unreachable branch aborts at runtime rather than
  /// static_asserting because the vtable instantiates this body even when
  /// every concrete collector overrides it.
  virtual R finish(A&& container) const {
    if constexpr (std::is_convertible_v<A&&, R>) {
      return std::move(container);
    } else {
      pls::detail::assert_fail(
          "Collector with R != A must override finish()", __FILE__,
          __LINE__);
    }
  }
};

/// Collector able to fold a whole contiguous chunk in one call — the SIMD
/// kernel hook of the fused evaluator. When a collector provides
/// accumulate_chunk(acc, values, n), the fused terminal sink routes
/// accept_chunk through it instead of the per-element accumulate loop
/// (e.g. PolynomialValueCollector's blocked Horner kernel). The chunk fold
/// must compute the same reduction as n accumulate calls — exactly for
/// integer accumulators, within rounding re-association for floating
/// point (support/simd.hpp states the contract).
template <typename C, typename T>
concept ChunkAccumulatingCollector =
    requires(const C& c, typename C::accumulation_type& acc, const T* p,
             std::size_t n) {
      c.accumulate_chunk(acc, p, n);
    };

/// Collector assembled from three (or four) callables; the analogue of
/// Collector.of(...).
template <typename T, typename A, typename R, typename SupplyFn,
          typename AccumulateFn, typename CombineFn, typename FinishFn>
class FunctionalCollector final : public Collector<T, A, R> {
 public:
  FunctionalCollector(SupplyFn supply, AccumulateFn accumulate,
                      CombineFn combine, FinishFn finish)
      : supply_(std::move(supply)),
        accumulate_(std::move(accumulate)),
        combine_(std::move(combine)),
        finish_(std::move(finish)) {}

  A supply() const override { return supply_(); }

  void accumulate(A& container, const T& value) const override {
    accumulate_(container, value);
  }

  void combine(A& left, A& right) const override { combine_(left, right); }

  R finish(A&& container) const override {
    return finish_(std::move(container));
  }

 private:
  SupplyFn supply_;
  AccumulateFn accumulate_;
  CombineFn combine_;
  FinishFn finish_;
};

/// Build a collector whose result type equals its accumulation type.
template <typename T, typename SupplyFn, typename AccumulateFn,
          typename CombineFn>
auto make_collector(SupplyFn supply, AccumulateFn accumulate,
                    CombineFn combine) {
  using A = std::invoke_result_t<SupplyFn&>;
  auto identity = [](A&& a) -> A { return std::move(a); };
  return FunctionalCollector<T, A, A, SupplyFn, AccumulateFn, CombineFn,
                             decltype(identity)>(
      std::move(supply), std::move(accumulate), std::move(combine),
      std::move(identity));
}

/// Build a collector with an explicit finisher A -> R.
template <typename T, typename SupplyFn, typename AccumulateFn,
          typename CombineFn, typename FinishFn>
auto make_collector(SupplyFn supply, AccumulateFn accumulate,
                    CombineFn combine, FinishFn finish) {
  using A = std::invoke_result_t<SupplyFn&>;
  using R = std::invoke_result_t<FinishFn&, A&&>;
  return FunctionalCollector<T, A, R, SupplyFn, AccumulateFn, CombineFn,
                             FinishFn>(std::move(supply),
                                       std::move(accumulate),
                                       std::move(combine), std::move(finish));
}

}  // namespace pls::streams
