// Source spliterators: array-backed, integer ranges, and generators.
//
// ArraySpliterator is the default source (the analogue of the spliterator
// Java derives from an ArrayList): it splits linearly in halves — in
// PowerList terms, the `tie` decomposition. Sources hold the storage via
// shared_ptr so splits and the pipelines built on them are lifetime-safe
// regardless of evaluation order.
#pragma once

#include <memory>
#include <vector>

#include "streams/spliterator.hpp"
#include "support/assert.hpp"

namespace pls::streams {

/// Spliterator over a contiguous [begin, end) window of a shared vector.
/// try_split carves off the first half ("segment" splitting, Section IV-A).
template <typename T>
class ArraySpliterator final : public Spliterator<T>, public WindowedSource {
 public:
  using Action = typename Spliterator<T>::Action;

  explicit ArraySpliterator(std::shared_ptr<const std::vector<T>> data)
      : data_(std::move(data)), begin_(0), end_(0) {
    PLS_CHECK(data_ != nullptr, "ArraySpliterator requires storage");
    end_ = data_->size();
  }

  ArraySpliterator(std::shared_ptr<const std::vector<T>> data,
                   std::size_t begin, std::size_t end)
      : data_(std::move(data)), begin_(begin), end_(end) {
    PLS_CHECK(data_ != nullptr, "ArraySpliterator requires storage");
    PLS_CHECK(begin_ <= end_ && end_ <= data_->size(),
              "ArraySpliterator window out of range");
  }

  bool try_advance(Action action) override {
    if (begin_ >= end_) return false;
    action((*data_)[begin_++]);
    return true;
  }

  void for_each_remaining(Action action) override {
    const std::vector<T>& v = *data_;
    for (std::size_t i = begin_; i < end_; ++i) action(v[i]);
    begin_ = end_;
  }

  std::pair<const T*, std::size_t> try_contiguous_chunk(
      std::size_t max_n) override {
    const std::size_t remaining = end_ - begin_;
    const std::size_t n = remaining < max_n ? remaining : max_n;
    if (n == 0) return {nullptr, 0};
    const T* p = data_->data() + begin_;
    begin_ += n;
    return {p, n};
  }

  std::unique_ptr<Spliterator<T>> try_split() override {
    const std::size_t remaining = end_ - begin_;
    if (remaining < 2) return nullptr;
    const std::size_t mid = begin_ + remaining / 2;
    auto prefix =
        std::make_unique<ArraySpliterator<T>>(data_, begin_, mid);
    begin_ = mid;
    return prefix;
  }

  std::uint64_t estimate_size() const override { return end_ - begin_; }

  Characteristics characteristics() const override {
    return kOrdered | kSized | kSubsized | kImmutable;
  }

  std::optional<OutputWindow> try_output_window() const override {
    return OutputWindow{begin_, 1, end_ - begin_};
  }

 private:
  std::shared_ptr<const std::vector<T>> data_;
  std::size_t begin_;
  std::size_t end_;
};

/// Spliterator over the integer range [begin, end).
template <typename I>
class RangeSpliterator final : public Spliterator<I>, public WindowedSource {
 public:
  using Action = typename Spliterator<I>::Action;

  RangeSpliterator(I begin, I end) : begin_(begin), end_(end) {
    PLS_CHECK(begin <= end, "RangeSpliterator requires begin <= end");
  }

  bool try_advance(Action action) override {
    if (begin_ >= end_) return false;
    action(begin_);
    ++begin_;
    return true;
  }

  void for_each_remaining(Action action) override {
    for (I i = begin_; i < end_; ++i) action(i);
    begin_ = end_;
  }

  std::unique_ptr<Spliterator<I>> try_split() override {
    if (end_ - begin_ < 2) return nullptr;
    const I mid = begin_ + (end_ - begin_) / 2;
    auto prefix = std::make_unique<RangeSpliterator<I>>(begin_, mid);
    begin_ = mid;
    return prefix;
  }

  std::uint64_t estimate_size() const override {
    return static_cast<std::uint64_t>(end_ - begin_);
  }

  Characteristics characteristics() const override {
    return kOrdered | kSized | kSubsized | kImmutable | kDistinct | kSorted;
  }

  std::optional<OutputWindow> try_output_window() const override {
    // Window coordinates are the range values themselves; unsigned
    // wrap-around for negative I cancels in the evaluator's rebasing.
    return OutputWindow{static_cast<std::uint64_t>(begin_), 1,
                        static_cast<std::uint64_t>(end_ - begin_)};
  }

 private:
  I begin_;
  I end_;
};

/// Spliterator producing f(i) for i in [begin, end) — a sized generator
/// (the analogue of IntStream.range(...).mapToObj(f) fused at the source).
template <typename T, typename Fn>
class GenerateSpliterator final : public Spliterator<T>,
                                  public WindowedSource {
 public:
  using Action = typename Spliterator<T>::Action;

  GenerateSpliterator(std::shared_ptr<const Fn> fn, std::uint64_t begin,
                      std::uint64_t end)
      : fn_(std::move(fn)), begin_(begin), end_(end) {
    PLS_CHECK(fn_ != nullptr, "GenerateSpliterator requires a generator");
    PLS_CHECK(begin <= end, "GenerateSpliterator requires begin <= end");
  }

  bool try_advance(Action action) override {
    if (begin_ >= end_) return false;
    action((*fn_)(begin_));
    ++begin_;
    return true;
  }

  void for_each_remaining(Action action) override {
    for (std::uint64_t i = begin_; i < end_; ++i) action((*fn_)(i));
    begin_ = end_;
  }

  std::unique_ptr<Spliterator<T>> try_split() override {
    if (end_ - begin_ < 2) return nullptr;
    const std::uint64_t mid = begin_ + (end_ - begin_) / 2;
    auto prefix =
        std::make_unique<GenerateSpliterator<T, Fn>>(fn_, begin_, mid);
    begin_ = mid;
    return prefix;
  }

  std::uint64_t estimate_size() const override { return end_ - begin_; }

  Characteristics characteristics() const override {
    return kOrdered | kSized | kSubsized | kImmutable;
  }

  std::optional<OutputWindow> try_output_window() const override {
    return OutputWindow{begin_, 1, end_ - begin_};
  }

 private:
  std::shared_ptr<const Fn> fn_;
  std::uint64_t begin_;
  std::uint64_t end_;
};

/// Concatenation of two spliterators: first's elements, then second's.
/// Splitting hands off the entire first part — the natural (and Java's)
/// strategy, giving parallel evaluation one clean boundary.
template <typename T>
class ConcatSpliterator final : public Spliterator<T> {
 public:
  using Action = typename Spliterator<T>::Action;

  ConcatSpliterator(std::unique_ptr<Spliterator<T>> first,
                    std::unique_ptr<Spliterator<T>> second)
      : first_(std::move(first)), second_(std::move(second)) {
    PLS_CHECK(first_ != nullptr && second_ != nullptr,
              "ConcatSpliterator requires both parts");
  }

  bool try_advance(Action action) override {
    if (first_ != nullptr) {
      if (first_->try_advance(action)) return true;
      first_.reset();
    }
    return second_->try_advance(action);
  }

  void for_each_remaining(Action action) override {
    if (first_ != nullptr) {
      first_->for_each_remaining(action);
      first_.reset();
    }
    second_->for_each_remaining(action);
  }

  std::unique_ptr<Spliterator<T>> try_split() override {
    if (first_ != nullptr) {
      return std::move(first_);  // the prefix is exactly the first part
    }
    return second_->try_split();
  }

  std::uint64_t estimate_size() const override {
    const std::uint64_t f = first_ != nullptr ? first_->estimate_size() : 0;
    return f + second_->estimate_size();
  }

  Characteristics characteristics() const override {
    Characteristics c = second_->characteristics();
    if (first_ != nullptr) c &= first_->characteristics();
    // Concatenation does not preserve sortedness/distinctness/POWER2.
    return c & ~(kSorted | kDistinct | kPower2);
  }

 private:
  std::unique_ptr<Spliterator<T>> first_;  // null once consumed/split off
  std::unique_ptr<Spliterator<T>> second_;
};

}  // namespace pls::streams
