// fuse(): strip a wrapper-spliterator pipeline into a FusedPipeline —
// the owned source spliterator plus the ordered stage chain — so terminal
// evaluation can compose one Sink chain per leaf and run a single tight
// push loop (docs/execution.md, "Pipeline fusion").
//
// The stream still *builds* the wrapper chain (splitting, characteristics
// and introspection are unchanged); fusion happens once, at terminal
// evaluation, by walking the wrappers outermost-in through the
// FusableStage mixin. Each fusable wrapper contributes an immutable
// StageNode descriptor and hands over its upstream; when the walk bottoms
// out in an admissible source (SIZED|SUBSIZED, windowed, window count ==
// size — the same shape test the destination-passing collect uses), the
// wrappers are consumed and the fused pipeline takes over. When any layer
// is non-fusible (concat products, an unsized iterate tail, a
// non-windowed source), nothing is consumed and the caller falls back to
// the wrapper path unchanged. sorted is special: it materialises its
// buffer and restarts the fusion walk on it as a fresh windowed array
// source, so everything *downstream* of the buffer point still fuses.
//
// Splitting a FusedPipeline splits the source and shares the stage chain,
// so the parallel tree walks fork fused leaves exactly where they forked
// wrapper leaves. Chains containing a cancelling stage (limit/take_while)
// refuse to split — their wrappers did too — and always run the
// element-mode driver, preserving short-circuit consumption depth.
// Stateful chains (distinct) also refuse to split, but keep the chunked
// transport within their single leaf.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <typeinfo>
#include <utility>
#include <vector>

#include "streams/sink.hpp"
#include "streams/spliterator.hpp"
#include "support/assert.hpp"

namespace pls::streams {

/// Immutable, type-erased descriptor of one intermediate operation. The
/// concrete templates below carry the operator (shared with the wrapper
/// spliterators) and know how to wrap a downstream sink; the type-erased
/// face is what FusedPipeline stores and what chain assembly walks —
/// one virtual wrap_sink per stage per leaf, never per element.
class StageNode {
 public:
  virtual ~StageNode() = default;

  /// Wrap `downstream` (a Sink of this stage's output type) into a sink of
  /// this stage's input type. Chain typing is enforced at append time via
  /// input_type()/output_type(), so the static_cast inside is sound.
  virtual std::unique_ptr<SinkControl> wrap_sink(
      SinkControl& downstream) const = 0;

  virtual const std::type_info& input_type() const noexcept = 0;
  virtual const std::type_info& output_type() const noexcept = 0;

  /// True for short-circuit stages (limit / take_while): the chain must
  /// run element-mode with cancellation checks and never split.
  virtual bool cancels() const noexcept { return false; }

  /// True for stages whose sink carries traversal-wide state (distinct's
  /// seen-set): the chain must be driven by exactly one leaf — split
  /// products would each dedup against their own empty set — but may
  /// still use the chunked transport.
  virtual bool stateful() const noexcept { return false; }

  /// True when the stage maps elements 1:1 (map / peek) — the property
  /// that keeps destination windows meaningful through the chain.
  virtual bool one_to_one() const noexcept { return true; }

  /// How the stage transforms a known upstream element count; returns
  /// kUnknownSinkSize when the result count cannot be known (filter,
  /// take_while). Mirrors what the wrapper reported through kSized /
  /// estimate_size, so fused leaves feed the observe counters the same
  /// element totals the wrapper leaves did.
  virtual std::uint64_t transform_count(std::uint64_t count) const noexcept {
    return count;
  }
};

/// A stripped pipeline: the source spliterator (of a hidden element type)
/// plus the stage chain, ready to drive sink chains. Output element type
/// is stages.back().output_type() — verified against the terminal's T by
/// fuse_pipeline, which is the only way these are made.
class FusedPipeline {
 public:
  virtual ~FusedPipeline() = default;

  /// Remaining source elements (exact: admission requires SIZED).
  virtual std::uint64_t estimate_size() const = 0;

  /// The source's destination window (admission guarantees presence on
  /// the undivided pipeline; split products inherit it from their source).
  virtual std::optional<OutputWindow> source_window() const = 0;

  /// Split off a prefix pipeline sharing this stage chain, or nullptr
  /// (always nullptr for cancelling chains).
  virtual std::unique_ptr<FusedPipeline> try_split() = 0;

  /// Push every remaining source element through the composed sink chain
  /// into `terminal` (a Sink of the pipeline's output type). Calls
  /// begin/end; uses the chunked transport unless the chain cancels.
  virtual void drive(SinkControl& terminal) = 0;

  /// Like drive(), but always element-mode with a cancellation check
  /// between source elements, regardless of whether any *stage* cancels —
  /// for short-circuit terminals (any/all/none_match, find_first), whose
  /// cancellation signal lives in the terminal sink itself.
  virtual void drive_short_circuit(SinkControl& terminal) = 0;

  virtual const std::type_info& output_type() const noexcept = 0;

  /// Append the next-outer stage (fusion walks outermost-in, so stages
  /// arrive source-side first). Checks the element-type seam.
  virtual void append_stage(std::shared_ptr<const StageNode> stage) = 0;

  /// Re-arm the chain for another drive. Batch terminals drive a pipeline
  /// exactly once; the service layer (src/service/) plans a chain once per
  /// session and drives it once per micro-batch, so the source must be a
  /// ReusableSource and the chain must be re-armed between drives.
  /// PLS_CHECKs that the chain is resettable: no cancelling stage (a
  /// short-circuited chain has consumed an unknowable prefix), the
  /// previous drive did not end cancelled (accidental reuse of a
  /// cancelled chain is a bug, not a retry), and the source opts in via
  /// ReusableSource.
  virtual void reset() = 0;

  bool cancels() const noexcept { return cancels_; }
  bool one_to_one() const noexcept { return one_to_one_; }
  bool stateful() const noexcept { return stateful_; }

  /// Number of stripped stages in the chain (the planner's stage summary).
  std::size_t stage_count() const noexcept { return stages().size(); }

  /// The element count a legacy wrapper leaf would have reported to the
  /// observe counters (countable_size of the outermost wrapper): the
  /// source size folded through every stage, 0 once any stage makes it
  /// unknowable.
  std::uint64_t countable_estimate() const {
    std::uint64_t n = estimate_size();
    for (const auto& s : stages()) {
      if (n == kUnknownSinkSize) break;
      n = s->transform_count(n);
    }
    return n == kUnknownSinkSize ? 0 : n;
  }

 protected:
  virtual const std::vector<std::shared_ptr<const StageNode>>& stages()
      const noexcept = 0;

  bool cancels_ = false;
  bool one_to_one_ = true;
  bool stateful_ = false;
};

/// Mixin for wrapper spliterators that can dissolve into a fused stage.
/// strip_into_fused() consumes the wrapper's upstream ONLY when the whole
/// chain below fused; on failure the wrapper (and everything under it) is
/// untouched and keeps working as a spliterator.
class FusableStage {
 public:
  virtual ~FusableStage() = default;
  virtual std::unique_ptr<FusedPipeline> strip_into_fused() = 0;
};

/// Mixin for spliterators that can be driven more than once. A source
/// implementing this promises that rearm() restores it to "everything
/// remaining" — either over the same bound data or over data freshly
/// bound between drives (the service layer's BatchSpliterator rebinds a
/// new micro-batch before each rearm). FusedPipeline::reset() requires
/// the source to implement this; ordinary one-shot sources never do.
class ReusableSource {
 public:
  virtual ~ReusableSource() = default;
  virtual void rearm() = 0;
};

template <typename S>
class FusedPipelineImpl final : public FusedPipeline {
 public:
  explicit FusedPipelineImpl(std::unique_ptr<Spliterator<S>> source)
      : source_(std::move(source)) {
    PLS_CHECK(source_ != nullptr, "fused pipeline requires a source");
  }

  std::uint64_t estimate_size() const override {
    return source_->estimate_size();
  }

  std::optional<OutputWindow> source_window() const override {
    return output_window_of(*source_);
  }

  std::unique_ptr<FusedPipeline> try_split() override {
    if (cancels_ || stateful_) return nullptr;
    auto prefix = source_->try_split();
    if (!prefix) return nullptr;
    auto out = std::make_unique<FusedPipelineImpl<S>>(std::move(prefix));
    out->stages_ = stages_;
    out->cancels_ = cancels_;
    out->one_to_one_ = one_to_one_;
    out->stateful_ = stateful_;
    return out;
  }

  const std::type_info& output_type() const noexcept override {
    return stages_.empty() ? typeid(S) : stages_.back()->output_type();
  }

  void append_stage(std::shared_ptr<const StageNode> stage) override {
    PLS_CHECK(stage != nullptr, "null fusion stage");
    PLS_CHECK(stage->input_type() == output_type(),
              "fusion stage input does not match chain output");
    cancels_ = cancels_ || stage->cancels();
    one_to_one_ = one_to_one_ && stage->one_to_one();
    stateful_ = stateful_ || stage->stateful();
    stages_.push_back(std::move(stage));
  }

  void drive(SinkControl& terminal) override {
    run_drive(terminal, /*element_mode=*/cancels_);
  }

  void drive_short_circuit(SinkControl& terminal) override {
    run_drive(terminal, /*element_mode=*/true);
  }

  void reset() override {
    PLS_CHECK(!cancels_,
              "cannot reset a fused pipeline with a cancelling stage "
              "(limit/take_while chains are single-drive)");
    PLS_CHECK(!last_drive_cancelled_,
              "cannot reset a fused pipeline whose last drive was "
              "cancelled (the source was left partially consumed)");
    auto* reusable = dynamic_cast<ReusableSource*>(source_.get());
    PLS_CHECK(reusable != nullptr,
              "fused pipeline source is not reusable (ReusableSource)");
    reusable->rearm();
    driven_ = false;
  }

 private:
  void run_drive(SinkControl& terminal, bool element_mode) {
    PLS_CHECK(!driven_,
              "fused pipeline already driven; call reset() between drives");
    driven_ = true;
    // Compose the sink chain back-to-front: terminal first, then each
    // stage outermost-in. One virtual wrap_sink per stage per leaf.
    std::vector<std::unique_ptr<SinkControl>> owned;
    owned.reserve(stages_.size());
    SinkControl* down = &terminal;
    for (std::size_t i = stages_.size(); i-- > 0;) {
      owned.push_back(stages_[i]->wrap_sink(*down));
      down = owned.back().get();
    }
    // `down` now consumes the source element type S: it is either the
    // innermost stage's sink or (stage-free chain) the terminal itself,
    // whose element type fuse_pipeline verified to be S.
    auto& head = static_cast<Sink<S>&>(*down);
    head.begin(source_->has(kSized) ? source_->estimate_size()
                                    : kUnknownSinkSize);
    if (element_mode) {
      drive_cancellable(head);
    } else {
      drive_bulk(head);
    }
    head.end();
    last_drive_cancelled_ = head.cancellation_requested();
  }

  /// Element-mode with a cancellation check between elements: consumes
  /// exactly as deep into the source as the wrapper chain would have.
  void drive_cancellable(Sink<S>& head) {
    while (!head.cancellation_requested() &&
           source_->try_advance([&](const S& v) { head.accept(v); })) {
    }
  }

  /// Chunked transport: contiguous sources hand whole spans straight into
  /// the chain (zero copies, zero per-element calls at the seam);
  /// computed sources batch through a buffer at one indirect call per
  /// element. Non-copyable elements fall back to element pushes.
  void drive_bulk(Sink<S>& head) {
    for (;;) {
      const auto [p, n] = source_->try_contiguous_chunk(~std::size_t{0});
      if (p == nullptr) break;
      head.accept_chunk(p, n);
    }
    if constexpr (std::is_copy_constructible_v<S>) {
      std::vector<S> buf;
      buf.reserve(kFusionChunk);
      source_->for_each_remaining([&](const S& v) {
        buf.push_back(v);
        if (buf.size() == kFusionChunk) {
          head.accept_chunk(buf.data(), buf.size());
          buf.clear();
        }
      });
      if (!buf.empty()) head.accept_chunk(buf.data(), buf.size());
    } else {
      source_->for_each_remaining([&](const S& v) { head.accept(v); });
    }
  }

  const std::vector<std::shared_ptr<const StageNode>>& stages()
      const noexcept override {
    return stages_;
  }

  std::unique_ptr<Spliterator<S>> source_;
  std::vector<std::shared_ptr<const StageNode>> stages_;
  bool driven_ = false;
  bool last_drive_cancelled_ = false;
};

// ---- stage descriptors ----------------------------------------------

template <typename Out, typename In, typename Fn>
class MapStage final : public StageNode {
 public:
  explicit MapStage(std::shared_ptr<const Fn> fn) : fn_(std::move(fn)) {}

  std::unique_ptr<SinkControl> wrap_sink(
      SinkControl& downstream) const override {
    return std::make_unique<MapSink<In, Out, Fn>>(
        fn_, static_cast<Sink<Out>&>(downstream));
  }

  const std::type_info& input_type() const noexcept override {
    return typeid(In);
  }
  const std::type_info& output_type() const noexcept override {
    return typeid(Out);
  }

 private:
  std::shared_ptr<const Fn> fn_;
};

template <typename T, typename Pred>
class FilterStage final : public StageNode {
 public:
  explicit FilterStage(std::shared_ptr<const Pred> pred)
      : pred_(std::move(pred)) {}

  std::unique_ptr<SinkControl> wrap_sink(
      SinkControl& downstream) const override {
    return std::make_unique<FilterSink<T, Pred>>(
        pred_, static_cast<Sink<T>&>(downstream));
  }

  const std::type_info& input_type() const noexcept override {
    return typeid(T);
  }
  const std::type_info& output_type() const noexcept override {
    return typeid(T);
  }
  bool one_to_one() const noexcept override { return false; }
  std::uint64_t transform_count(std::uint64_t) const noexcept override {
    return kUnknownSinkSize;
  }

 private:
  std::shared_ptr<const Pred> pred_;
};

template <typename T, typename Fn>
class PeekStage final : public StageNode {
 public:
  explicit PeekStage(std::shared_ptr<const Fn> observer)
      : observer_(std::move(observer)) {}

  std::unique_ptr<SinkControl> wrap_sink(
      SinkControl& downstream) const override {
    return std::make_unique<PeekSink<T, Fn>>(
        observer_, static_cast<Sink<T>&>(downstream));
  }

  const std::type_info& input_type() const noexcept override {
    return typeid(T);
  }
  const std::type_info& output_type() const noexcept override {
    return typeid(T);
  }

 private:
  std::shared_ptr<const Fn> observer_;
};

template <typename T>
class SliceStage final : public StageNode {
 public:
  SliceStage(std::uint64_t skip, std::uint64_t limit)
      : skip_(skip), limit_(limit) {}

  std::unique_ptr<SinkControl> wrap_sink(
      SinkControl& downstream) const override {
    return std::make_unique<SliceSink<T>>(skip_, limit_,
                                          static_cast<Sink<T>&>(downstream));
  }

  const std::type_info& input_type() const noexcept override {
    return typeid(T);
  }
  const std::type_info& output_type() const noexcept override {
    return typeid(T);
  }
  bool cancels() const noexcept override { return true; }
  bool one_to_one() const noexcept override { return false; }
  std::uint64_t transform_count(std::uint64_t count) const noexcept override {
    // Matches SliceSpliterator::estimate_size (the wrapper keeps kSized).
    const std::uint64_t after_skip = count > skip_ ? count - skip_ : 0;
    return after_skip < limit_ ? after_skip : limit_;
  }

 private:
  std::uint64_t skip_;
  std::uint64_t limit_;
};

template <typename Out, typename In, typename Fn>
class FlatMapStage final : public StageNode {
 public:
  explicit FlatMapStage(std::shared_ptr<const Fn> fn) : fn_(std::move(fn)) {}

  std::unique_ptr<SinkControl> wrap_sink(
      SinkControl& downstream) const override {
    return std::make_unique<FlatMapSink<In, Out, Fn>>(
        fn_, static_cast<Sink<Out>&>(downstream));
  }

  const std::type_info& input_type() const noexcept override {
    return typeid(In);
  }
  const std::type_info& output_type() const noexcept override {
    return typeid(Out);
  }
  bool one_to_one() const noexcept override { return false; }
  std::uint64_t transform_count(std::uint64_t) const noexcept override {
    // Fan-out per element is arbitrary; the wrapper dropped kSized too.
    return kUnknownSinkSize;
  }

 private:
  std::shared_ptr<const Fn> fn_;
};

template <typename T>
class DistinctStage final : public StageNode {
 public:
  std::unique_ptr<SinkControl> wrap_sink(
      SinkControl& downstream) const override {
    return std::make_unique<DistinctSink<T>>(static_cast<Sink<T>&>(downstream));
  }

  const std::type_info& input_type() const noexcept override {
    return typeid(T);
  }
  const std::type_info& output_type() const noexcept override {
    return typeid(T);
  }
  bool one_to_one() const noexcept override { return false; }
  bool stateful() const noexcept override { return true; }
  std::uint64_t transform_count(std::uint64_t) const noexcept override {
    return kUnknownSinkSize;
  }
};

template <typename T, typename Pred>
class TakeWhileStage final : public StageNode {
 public:
  explicit TakeWhileStage(std::shared_ptr<const Pred> pred)
      : pred_(std::move(pred)) {}

  std::unique_ptr<SinkControl> wrap_sink(
      SinkControl& downstream) const override {
    return std::make_unique<TakeWhileSink<T, Pred>>(
        pred_, static_cast<Sink<T>&>(downstream));
  }

  const std::type_info& input_type() const noexcept override {
    return typeid(T);
  }
  const std::type_info& output_type() const noexcept override {
    return typeid(T);
  }
  bool cancels() const noexcept override { return true; }
  bool one_to_one() const noexcept override { return false; }
  std::uint64_t transform_count(std::uint64_t) const noexcept override {
    return kUnknownSinkSize;
  }

 private:
  std::shared_ptr<const Pred> pred_;
};

// The fuse step itself — fuse_source / fuse_pipeline, i.e. the admission
// *decisions* — lives in streams/plan.hpp with every other admission
// predicate; this header keeps only the mechanism (stages, pipelines,
// the drive loops).

}  // namespace pls::streams
