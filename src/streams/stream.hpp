// Stream<T>: the lazy pipeline facade (mirrors java.util.stream.Stream).
//
// A Stream owns a source spliterator plus execution settings (sequential
// vs. parallel, pool, chunk target). Intermediate operations wrap the
// spliterator and return a new Stream; terminal operations traverse it —
// a Stream, like Java's, is single-use.
//
// Parallelism is requested exactly as in the paper's snippets: create the
// stream from a spliterator with `parallel = true`
// (stream_support::from_spliterator, the analogue of StreamSupport.stream)
// or toggle with .parallel()/.sequential().
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "streams/collector.hpp"
#include "streams/fusion.hpp"
#include "streams/parallel_eval.hpp"
#include "streams/pipeline_spliterators.hpp"
#include "streams/spliterator.hpp"
#include "streams/spliterators.hpp"
#include "support/assert.hpp"

namespace pls::streams {

namespace detail {

/// skip/limit wrapper. Sequential by design: it refuses to split (slicing
/// a parallel pipeline deterministically requires encounter-order
/// bookkeeping that Java, too, pays a heavy price for).
template <typename T>
class SliceSpliterator final : public Spliterator<T>, public FusableStage {
 public:
  using Action = typename Spliterator<T>::Action;

  SliceSpliterator(std::unique_ptr<Spliterator<T>> upstream,
                   std::uint64_t skip, std::uint64_t limit)
      : upstream_(std::move(upstream)), skip_(skip), limit_(limit) {}

  bool try_advance(Action action) override {
    while (skip_ > 0) {
      if (!upstream_->try_advance([](const T&) {})) return false;
      --skip_;
    }
    if (limit_ == 0) return false;
    if (!upstream_->try_advance(action)) return false;
    --limit_;
    return true;
  }

  std::unique_ptr<Spliterator<T>> try_split() override { return nullptr; }

  std::uint64_t estimate_size() const override {
    const std::uint64_t upstream = upstream_->estimate_size();
    const std::uint64_t after_skip =
        upstream > skip_ ? upstream - skip_ : 0;
    return after_skip < limit_ ? after_skip : limit_;
  }

  Characteristics characteristics() const override {
    return upstream_->characteristics() & ~(kSubsized | kPower2);
  }

  std::unique_ptr<FusedPipeline> strip_into_fused() override {
    auto fused = fuse_pipeline<T>(upstream_);
    if (fused != nullptr) {
      fused->append_stage(std::make_shared<SliceStage<T>>(skip_, limit_));
    }
    return fused;
  }

 private:
  std::unique_ptr<Spliterator<T>> upstream_;
  std::uint64_t skip_;
  std::uint64_t limit_;
};

/// takeWhile wrapper: emits elements until the predicate first fails.
/// Sequential (refuses to split), as ordered prefix semantics demand.
template <typename T, typename Pred>
class TakeWhileSpliterator final : public Spliterator<T>,
                                   public FusableStage {
 public:
  using Action = typename Spliterator<T>::Action;

  TakeWhileSpliterator(std::unique_ptr<Spliterator<T>> upstream, Pred pred)
      : upstream_(std::move(upstream)), pred_(std::move(pred)) {}

  bool try_advance(Action action) override {
    if (done_) return false;
    bool delivered = false;
    const bool advanced = upstream_->try_advance([&](const T& v) {
      if (pred_(v)) {
        action(v);
        delivered = true;
      } else {
        done_ = true;
      }
    });
    if (!advanced) done_ = true;
    return delivered;
  }

  std::unique_ptr<Spliterator<T>> try_split() override { return nullptr; }

  std::uint64_t estimate_size() const override {
    return done_ ? 0 : upstream_->estimate_size();
  }

  Characteristics characteristics() const override {
    return upstream_->characteristics() &
           ~(kSized | kSubsized | kPower2);
  }

  std::unique_ptr<FusedPipeline> strip_into_fused() override {
    auto fused = fuse_pipeline<T>(upstream_);
    if (fused != nullptr) {
      fused->append_stage(std::make_shared<TakeWhileStage<T, Pred>>(
          std::make_shared<const Pred>(pred_)));
    }
    return fused;
  }

 private:
  std::unique_ptr<Spliterator<T>> upstream_;
  Pred pred_;
  bool done_ = false;
};

/// dropWhile wrapper: skips the failing-prefix, then passes through.
template <typename T, typename Pred>
class DropWhileSpliterator final : public Spliterator<T> {
 public:
  using Action = typename Spliterator<T>::Action;

  DropWhileSpliterator(std::unique_ptr<Spliterator<T>> upstream, Pred pred)
      : upstream_(std::move(upstream)), pred_(std::move(pred)) {}

  bool try_advance(Action action) override {
    while (dropping_) {
      bool kept = false;
      const bool advanced = upstream_->try_advance([&](const T& v) {
        if (!pred_(v)) {
          dropping_ = false;
          action(v);
          kept = true;
        }
      });
      if (!advanced) {
        dropping_ = false;
        return false;
      }
      if (kept) return true;
    }
    return upstream_->try_advance(action);
  }

  void for_each_remaining(Action action) override {
    if (!dropping_) {
      upstream_->for_each_remaining(action);
      return;
    }
    Spliterator<T>::for_each_remaining(action);
  }

  std::unique_ptr<Spliterator<T>> try_split() override { return nullptr; }

  std::uint64_t estimate_size() const override {
    return upstream_->estimate_size();
  }

  Characteristics characteristics() const override {
    return upstream_->characteristics() &
           ~(kSized | kSubsized | kPower2);
  }

 private:
  std::unique_ptr<Spliterator<T>> upstream_;
  Pred pred_;
  bool dropping_ = true;
};

}  // namespace detail

template <typename T>
class Stream {
 public:
  /// Adopt a spliterator (the analogue of StreamSupport.stream).
  Stream(std::unique_ptr<Spliterator<T>> source, bool parallel)
      : source_(std::move(source)), parallel_(parallel) {
    PLS_CHECK(source_ != nullptr, "Stream requires a source spliterator");
  }

  // ---- factories ----------------------------------------------------

  /// Stream over a copy (or move) of a vector.
  static Stream<T> of(std::vector<T> values) {
    auto shared =
        std::make_shared<const std::vector<T>>(std::move(values));
    return Stream<T>(std::make_unique<ArraySpliterator<T>>(shared), false);
  }

  /// Stream over shared storage (no copy).
  static Stream<T> of_shared(std::shared_ptr<const std::vector<T>> values) {
    return Stream<T>(std::make_unique<ArraySpliterator<T>>(std::move(values)),
                     false);
  }

  /// Integer range [begin, end).
  static Stream<T> range(T begin, T end) {
    static_assert(std::is_integral_v<T>, "range requires an integer type");
    return Stream<T>(std::make_unique<RangeSpliterator<T>>(begin, end),
                     false);
  }

  /// n elements produced by fn(0), fn(1), ..., fn(n-1).
  template <typename Fn>
  static Stream<T> generate(Fn fn, std::uint64_t n) {
    auto shared = std::make_shared<const Fn>(std::move(fn));
    return Stream<T>(
        std::make_unique<GenerateSpliterator<T, Fn>>(shared, 0, n), false);
  }

  /// Infinite stream seed, next(seed), ... (Stream.iterate); bound it
  /// with .limit(n). Parallel evaluation carves array batches off the
  /// lazy tail (see streams/unsized.hpp).
  template <typename Next>
  static Stream<T> iterate(T seed, Next next);

  /// All elements of `a`, then all elements of `b` (Stream.concat).
  /// Execution settings are taken from `a`.
  static Stream<T> concat(Stream<T> a, Stream<T> b) {
    Stream<T> out(std::make_unique<ConcatSpliterator<T>>(
                      std::move(a.source_), std::move(b.source_)),
                  a.parallel_);
    out.config_ = a.config_;
    return out;
  }

  // ---- execution configuration --------------------------------------
  //
  // All execution builders are &&-qualified: a Stream is single-use and
  // the builders consume it, exactly like the intermediate operations.
  // Lvalue chaining was a foot-gun (it silently mutated a stream someone
  // else still held) and is deleted.

  Stream<T>& parallel() & = delete;
  Stream<T>&& parallel() && {
    parallel_ = true;
    return std::move(*this);
  }
  /// Parallel with an explicit execution config (pool, chunk target,
  /// sized-sink and fusion toggles), e.g. the one handed out by
  /// pls::session::stream_config().
  Stream<T>&& parallel(const ExecutionConfig& cfg) && {
    parallel_ = true;
    config_ = cfg;
    return std::move(*this);
  }
  Stream<T>& sequential() & = delete;
  Stream<T>&& sequential() && {
    parallel_ = false;
    return std::move(*this);
  }
  bool is_parallel() const noexcept { return parallel_; }

  /// Run parallel terminals on a specific pool (default: common pool).
  Stream<T>&& via(forkjoin::ForkJoinPool& pool) && {
    config_.with_pool(pool);
    return std::move(*this);
  }

  /// Set the split target: chunks of at most `n` elements.
  Stream<T>&& with_min_chunk(std::uint64_t n) && {
    config_.with_min_chunk(n);
    return std::move(*this);
  }

  /// Allow or forbid the destination-passing collect path (on by
  /// default; see docs/execution.md). Off forces every collect through
  /// the supplier/combiner reduction.
  Stream<T>&& with_sized_sink(bool enabled) && {
    config_.with_sized_sink(enabled);
    return std::move(*this);
  }

  /// Allow or forbid pipeline fusion (on by default; see
  /// docs/execution.md, "Pipeline fusion"). Off forces terminals through
  /// the per-element wrapper walk.
  Stream<T>&& with_fusion(bool enabled) && {
    config_.with_fusion(enabled);
    return std::move(*this);
  }

  /// Replace the whole execution configuration at once (pool, grain,
  /// sized-sink, fusion, auto-grain) — the bulk form of the with_*
  /// setters above, for callers that already hold an ExecutionConfig.
  Stream<T>&& with_config(const ExecutionConfig& cfg) && {
    config_ = cfg;
    return std::move(*this);
  }

  // ---- intermediate operations (consume the stream) ------------------

  template <typename Fn>
  auto map(Fn fn) && {
    using U = std::remove_cvref_t<std::invoke_result_t<Fn&, const T&>>;
    auto shared = std::make_shared<const Fn>(std::move(fn));
    return rewrap<U>(std::make_unique<MapSpliterator<U, T, Fn>>(
        std::move(source_), shared));
  }

  template <typename Pred>
  Stream<T> filter(Pred pred) && {
    auto shared = std::make_shared<const Pred>(std::move(pred));
    return rewrap<T>(std::make_unique<FilterSpliterator<T, Pred>>(
        std::move(source_), shared));
  }

  template <typename Fn>
  Stream<T> peek(Fn observer) && {
    auto shared = std::make_shared<const Fn>(std::move(observer));
    return rewrap<T>(std::make_unique<PeekSpliterator<T, Fn>>(
        std::move(source_), shared));
  }

  template <typename Fn>
  auto flat_map(Fn fn) && {
    using Vec = std::remove_cvref_t<std::invoke_result_t<Fn&, const T&>>;
    using U = typename Vec::value_type;
    auto shared = std::make_shared<const Fn>(std::move(fn));
    return rewrap<U>(std::make_unique<FlatMapSpliterator<U, T, Fn>>(
        std::move(source_), shared));
  }

  /// Truncate to at most n elements (sequential slicing semantics).
  Stream<T> limit(std::uint64_t n) && {
    return rewrap<T>(std::make_unique<detail::SliceSpliterator<T>>(
        std::move(source_), 0, n));
  }

  /// Drop the first n elements (sequential slicing semantics).
  Stream<T> skip(std::uint64_t n) && {
    return rewrap<T>(std::make_unique<detail::SliceSpliterator<T>>(
        std::move(source_), n,
        std::numeric_limits<std::uint64_t>::max()));
  }

  /// Longest prefix satisfying the predicate (Java 9's takeWhile).
  /// Sequential slicing semantics, like limit.
  template <typename Pred>
  Stream<T> take_while(Pred pred) && {
    return rewrap<T>(std::make_unique<detail::TakeWhileSpliterator<T, Pred>>(
        std::move(source_), std::move(pred)));
  }

  /// Drop the longest prefix satisfying the predicate (dropWhile).
  template <typename Pred>
  Stream<T> drop_while(Pred pred) && {
    return rewrap<T>(std::make_unique<detail::DropWhileSpliterator<T, Pred>>(
        std::move(source_), std::move(pred)));
  }

  /// Sort the elements (stateful: materialises lazily at first
  /// traversal, like Java's sorted()). The buffer point restarts fusion:
  /// terminals re-enter fuse_pipeline on the sorted buffer as a fresh
  /// windowed array source, so downstream stages still fuse.
  template <typename Cmp = std::less<T>>
  Stream<T> sorted(Cmp cmp = Cmp{}) && {
    return rewrap<T>(std::make_unique<SortedSpliterator<T, Cmp>>(
        std::move(source_), std::move(cmp)));
  }

  /// Remove duplicates, keeping first occurrences (stateful). Fuses as a
  /// DistinctSink; the seen-set makes the chain single-leaf-only.
  Stream<T> distinct() && {
    return rewrap<T>(std::make_unique<DistinctSpliterator<T>>(
        std::move(source_)));
  }

  // ---- typed static pipeline -----------------------------------------

  /// Hand the stream's source to a compile-time stage stack: the ops
  /// (streams/static_fusion.hpp: stages::map/filter/peek values) become a
  /// tuple type, and terminals run the whole chain as one inlined loop
  /// per chunk with no virtual calls between stages. Defined in
  /// streams/static_fusion.hpp (include it, or pls.hpp, to use).
  template <typename... Ops>
  auto stages(Ops&&... ops) &&;

  // ---- terminal operations -------------------------------------------

  /// Mutable reduction with a Collector (the template method of the
  /// paper's adaptation).
  template <typename C>
  typename C::result_type collect(const C& collector) && {
    return evaluate(source_, terminals::collect(collector), parallel_,
                    config_);
  }

  /// Three-function collect, as in the paper's snippets:
  /// collect(supplier, accumulator, combiner).
  template <typename SupplyFn, typename AccumulateFn, typename CombineFn>
  auto collect(SupplyFn supply, AccumulateFn accumulate,
               CombineFn combine) && {
    auto c = make_collector<T>(std::move(supply), std::move(accumulate),
                               std::move(combine));
    return evaluate(source_, terminals::collect(c), parallel_, config_);
  }

  /// Reduce with an associative operator; nullopt on an empty stream.
  template <typename Op>
  std::optional<T> reduce(Op op) && {
    return evaluate(source_, terminals::reduce(op), parallel_, config_);
  }

  /// Reduce with identity; `identity` must be a true identity of `op`.
  template <typename Op>
  T reduce(T identity, Op op) && {
    auto r = evaluate(source_, terminals::reduce(op), parallel_, config_);
    return r.has_value() ? std::move(*r) : std::move(identity);
  }

  template <typename Fn>
  void for_each(Fn fn) && {
    evaluate(source_, terminals::for_each(fn), parallel_, config_);
  }

  std::uint64_t count() && {
    return evaluate(source_, terminals::count(), parallel_, config_);
  }

  std::vector<T> to_vector() && {
    return evaluate(source_, terminals::collect(VectorCollector<T>{}),
                    parallel_, config_);
  }

  template <typename Cmp = std::less<T>>
  std::optional<T> min(Cmp cmp = Cmp{}) && {
    return std::move(*this).reduce(
        [cmp](const T& a, const T& b) { return cmp(b, a) ? b : a; });
  }

  template <typename Cmp = std::less<T>>
  std::optional<T> max(Cmp cmp = Cmp{}) && {
    return std::move(*this).reduce(
        [cmp](const T& a, const T& b) { return cmp(a, b) ? b : a; });
  }

  /// Sum of elements (arithmetic T); empty stream sums to T{}.
  T sum() && {
    static_assert(std::is_arithmetic_v<T>, "sum requires arithmetic T");
    return std::move(*this).reduce(T{},
                                   [](T a, T b) { return a + b; });
  }

  /// Short-circuit search terminals (sequential encounter-order
  /// traversal). Planned like every other terminal: fused chains run a
  /// cancelling terminal sink through the element-mode push loop
  /// (DriveMode::kElementLoop) with legacy-identical source-consumption
  /// depth; unfused chains run the classic pull loops.
  template <typename Pred>
  bool any_match(Pred pred) && {
    return evaluate(source_, terminals::any_match(pred), parallel_, config_);
  }

  /// Direct cancelling sink — not a negated any_match, so no negated
  /// predicate wrapper is evaluated per element.
  template <typename Pred>
  bool all_match(Pred pred) && {
    return evaluate(source_, terminals::all_match(pred), parallel_, config_);
  }

  template <typename Pred>
  bool none_match(Pred pred) && {
    return evaluate(source_, terminals::none_match(pred), parallel_, config_);
  }

  std::optional<T> find_first() && {
    return evaluate(source_, terminals::find_first(), parallel_, config_);
  }

  // ---- introspection --------------------------------------------------

  /// The underlying spliterator (e.g. to check the POWER2 characteristic
  /// before applying a PowerList function, as the paper's snippet does).
  const Spliterator<T>& spliterator() const { return *source_; }

  Characteristics characteristics() const {
    return source_->characteristics();
  }

  std::uint64_t estimate_size() const { return source_->estimate_size(); }

 private:
  template <typename U>
  Stream<U> rewrap(std::unique_ptr<Spliterator<U>> source) {
    Stream<U> out(std::move(source), parallel_);
    out.config_ = config_;
    return out;
  }

  template <typename U>
  friend class Stream;

  // The typed static pipeline adopts a stream's source and settings
  // (streams/static_fusion.hpp).
  template <typename S, typename... Ops>
  friend class StaticPipeline;

  std::unique_ptr<Spliterator<T>> source_;
  bool parallel_ = false;
  ExecutionConfig config_{};
};

namespace stream_support {

/// The analogue of StreamSupport.stream(spliterator, parallel).
template <typename T>
Stream<T> from_spliterator(std::unique_ptr<Spliterator<T>> sp,
                           bool parallel) {
  return Stream<T>(std::move(sp), parallel);
}

}  // namespace stream_support

}  // namespace pls::streams

#include "streams/unsized.hpp"

namespace pls::streams {

template <typename T>
template <typename Next>
Stream<T> Stream<T>::iterate(T seed, Next next) {
  return Stream<T>(iterate_stream(std::move(seed), std::move(next)), false);
}

}  // namespace pls::streams
