add_test([=[Umbrella.EveryModuleIsReachable]=]  /root/repo/build/tests/umbrella_test [==[--gtest_filter=Umbrella.EveryModuleIsReachable]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Umbrella.EveryModuleIsReachable]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  umbrella_test_TESTS Umbrella.EveryModuleIsReachable)
