file(REMOVE_RECURSE
  "CMakeFiles/power2_pipeline_test.dir/streams/power2_pipeline_test.cpp.o"
  "CMakeFiles/power2_pipeline_test.dir/streams/power2_pipeline_test.cpp.o.d"
  "power2_pipeline_test"
  "power2_pipeline_test.pdb"
  "power2_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power2_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
