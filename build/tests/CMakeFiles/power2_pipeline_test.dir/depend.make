# Empty dependencies file for power2_pipeline_test.
# This may be replaced when dependencies are built.
