file(REMOVE_RECURSE
  "CMakeFiles/adder_shuffle_test.dir/powerlist/adder_shuffle_test.cpp.o"
  "CMakeFiles/adder_shuffle_test.dir/powerlist/adder_shuffle_test.cpp.o.d"
  "adder_shuffle_test"
  "adder_shuffle_test.pdb"
  "adder_shuffle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_shuffle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
