# Empty dependencies file for adder_shuffle_test.
# This may be replaced when dependencies are built.
