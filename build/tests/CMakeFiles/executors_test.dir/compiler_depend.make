# Empty compiler generated dependencies file for executors_test.
# This may be replaced when dependencies are built.
