file(REMOVE_RECURSE
  "CMakeFiles/power_executor_test.dir/mpisim/power_executor_test.cpp.o"
  "CMakeFiles/power_executor_test.dir/mpisim/power_executor_test.cpp.o.d"
  "power_executor_test"
  "power_executor_test.pdb"
  "power_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
