# Empty dependencies file for power_executor_test.
# This may be replaced when dependencies are built.
