file(REMOVE_RECURSE
  "CMakeFiles/collector_functions_test.dir/powerlist/collector_functions_test.cpp.o"
  "CMakeFiles/collector_functions_test.dir/powerlist/collector_functions_test.cpp.o.d"
  "collector_functions_test"
  "collector_functions_test.pdb"
  "collector_functions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collector_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
