# Empty dependencies file for stream_extras_test.
# This may be replaced when dependencies are built.
