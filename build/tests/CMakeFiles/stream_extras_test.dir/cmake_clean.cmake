file(REMOVE_RECURSE
  "CMakeFiles/stream_extras_test.dir/streams/stream_extras_test.cpp.o"
  "CMakeFiles/stream_extras_test.dir/streams/stream_extras_test.cpp.o.d"
  "stream_extras_test"
  "stream_extras_test.pdb"
  "stream_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
