file(REMOVE_RECURSE
  "CMakeFiles/pl_spliterators_test.dir/powerlist/pl_spliterators_test.cpp.o"
  "CMakeFiles/pl_spliterators_test.dir/powerlist/pl_spliterators_test.cpp.o.d"
  "pl_spliterators_test"
  "pl_spliterators_test.pdb"
  "pl_spliterators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pl_spliterators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
