# Empty compiler generated dependencies file for pl_spliterators_test.
# This may be replaced when dependencies are built.
