# Empty compiler generated dependencies file for function_ref_test.
# This may be replaced when dependencies are built.
