file(REMOVE_RECURSE
  "CMakeFiles/function_ref_test.dir/support/function_ref_test.cpp.o"
  "CMakeFiles/function_ref_test.dir/support/function_ref_test.cpp.o.d"
  "function_ref_test"
  "function_ref_test.pdb"
  "function_ref_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/function_ref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
