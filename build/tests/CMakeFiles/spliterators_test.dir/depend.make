# Empty dependencies file for spliterators_test.
# This may be replaced when dependencies are built.
