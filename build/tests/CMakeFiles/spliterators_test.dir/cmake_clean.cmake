file(REMOVE_RECURSE
  "CMakeFiles/spliterators_test.dir/streams/spliterators_test.cpp.o"
  "CMakeFiles/spliterators_test.dir/streams/spliterators_test.cpp.o.d"
  "spliterators_test"
  "spliterators_test.pdb"
  "spliterators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spliterators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
