file(REMOVE_RECURSE
  "CMakeFiles/power_stream_test.dir/powerlist/power_stream_test.cpp.o"
  "CMakeFiles/power_stream_test.dir/powerlist/power_stream_test.cpp.o.d"
  "power_stream_test"
  "power_stream_test.pdb"
  "power_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
