file(REMOVE_RECURSE
  "CMakeFiles/deque_test.dir/forkjoin/deque_test.cpp.o"
  "CMakeFiles/deque_test.dir/forkjoin/deque_test.cpp.o.d"
  "deque_test"
  "deque_test.pdb"
  "deque_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deque_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
