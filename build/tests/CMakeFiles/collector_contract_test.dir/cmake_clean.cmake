file(REMOVE_RECURSE
  "CMakeFiles/collector_contract_test.dir/streams/collector_contract_test.cpp.o"
  "CMakeFiles/collector_contract_test.dir/streams/collector_contract_test.cpp.o.d"
  "collector_contract_test"
  "collector_contract_test.pdb"
  "collector_contract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collector_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
