file(REMOVE_RECURSE
  "CMakeFiles/unsized_test.dir/streams/unsized_test.cpp.o"
  "CMakeFiles/unsized_test.dir/streams/unsized_test.cpp.o.d"
  "unsized_test"
  "unsized_test.pdb"
  "unsized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
