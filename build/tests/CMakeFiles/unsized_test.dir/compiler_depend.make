# Empty compiler generated dependencies file for unsized_test.
# This may be replaced when dependencies are built.
