# Empty compiler generated dependencies file for power_array_test.
# This may be replaced when dependencies are built.
