file(REMOVE_RECURSE
  "CMakeFiles/power_array_test.dir/powerlist/power_array_test.cpp.o"
  "CMakeFiles/power_array_test.dir/powerlist/power_array_test.cpp.o.d"
  "power_array_test"
  "power_array_test.pdb"
  "power_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
