# Empty dependencies file for collectors_test.
# This may be replaced when dependencies are built.
