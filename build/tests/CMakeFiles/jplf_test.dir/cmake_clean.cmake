file(REMOVE_RECURSE
  "CMakeFiles/jplf_test.dir/powerlist/jplf_test.cpp.o"
  "CMakeFiles/jplf_test.dir/powerlist/jplf_test.cpp.o.d"
  "jplf_test"
  "jplf_test.pdb"
  "jplf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jplf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
