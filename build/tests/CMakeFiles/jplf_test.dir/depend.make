# Empty dependencies file for jplf_test.
# This may be replaced when dependencies are built.
