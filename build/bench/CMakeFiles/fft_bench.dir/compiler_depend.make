# Empty compiler generated dependencies file for fft_bench.
# This may be replaced when dependencies are built.
