file(REMOVE_RECURSE
  "CMakeFiles/fft_bench.dir/fft_bench.cpp.o"
  "CMakeFiles/fft_bench.dir/fft_bench.cpp.o.d"
  "fft_bench"
  "fft_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
