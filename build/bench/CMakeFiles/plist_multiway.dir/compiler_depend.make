# Empty compiler generated dependencies file for plist_multiway.
# This may be replaced when dependencies are built.
