file(REMOVE_RECURSE
  "CMakeFiles/plist_multiway.dir/plist_multiway.cpp.o"
  "CMakeFiles/plist_multiway.dir/plist_multiway.cpp.o.d"
  "plist_multiway"
  "plist_multiway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plist_multiway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
