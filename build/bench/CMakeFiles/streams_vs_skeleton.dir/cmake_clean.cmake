file(REMOVE_RECURSE
  "CMakeFiles/streams_vs_skeleton.dir/streams_vs_skeleton.cpp.o"
  "CMakeFiles/streams_vs_skeleton.dir/streams_vs_skeleton.cpp.o.d"
  "streams_vs_skeleton"
  "streams_vs_skeleton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streams_vs_skeleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
