# Empty compiler generated dependencies file for streams_vs_skeleton.
# This may be replaced when dependencies are built.
