file(REMOVE_RECURSE
  "CMakeFiles/tie_vs_zip.dir/tie_vs_zip.cpp.o"
  "CMakeFiles/tie_vs_zip.dir/tie_vs_zip.cpp.o.d"
  "tie_vs_zip"
  "tie_vs_zip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tie_vs_zip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
