# Empty compiler generated dependencies file for tie_vs_zip.
# This may be replaced when dependencies are built.
