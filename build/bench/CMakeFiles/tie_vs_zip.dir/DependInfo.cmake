
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tie_vs_zip.cpp" "bench/CMakeFiles/tie_vs_zip.dir/tie_vs_zip.cpp.o" "gcc" "bench/CMakeFiles/tie_vs_zip.dir/tie_vs_zip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/forkjoin/CMakeFiles/pls_forkjoin.dir/DependInfo.cmake"
  "/root/repo/build/src/simmachine/CMakeFiles/pls_simmachine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
