# Empty compiler generated dependencies file for scan_bench.
# This may be replaced when dependencies are built.
