file(REMOVE_RECURSE
  "CMakeFiles/scan_bench.dir/scan_bench.cpp.o"
  "CMakeFiles/scan_bench.dir/scan_bench.cpp.o.d"
  "scan_bench"
  "scan_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
