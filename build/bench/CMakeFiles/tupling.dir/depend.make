# Empty dependencies file for tupling.
# This may be replaced when dependencies are built.
