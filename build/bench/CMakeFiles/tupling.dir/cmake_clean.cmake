file(REMOVE_RECURSE
  "CMakeFiles/tupling.dir/tupling.cpp.o"
  "CMakeFiles/tupling.dir/tupling.cpp.o.d"
  "tupling"
  "tupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
