# Empty compiler generated dependencies file for sorts_bench.
# This may be replaced when dependencies are built.
