file(REMOVE_RECURSE
  "CMakeFiles/sorts_bench.dir/sorts_bench.cpp.o"
  "CMakeFiles/sorts_bench.dir/sorts_bench.cpp.o.d"
  "sorts_bench"
  "sorts_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorts_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
