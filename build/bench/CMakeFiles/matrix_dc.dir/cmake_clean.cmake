file(REMOVE_RECURSE
  "CMakeFiles/matrix_dc.dir/matrix_dc.cpp.o"
  "CMakeFiles/matrix_dc.dir/matrix_dc.cpp.o.d"
  "matrix_dc"
  "matrix_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
