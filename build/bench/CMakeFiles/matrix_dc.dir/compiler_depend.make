# Empty compiler generated dependencies file for matrix_dc.
# This may be replaced when dependencies are built.
