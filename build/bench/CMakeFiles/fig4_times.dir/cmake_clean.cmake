file(REMOVE_RECURSE
  "CMakeFiles/fig4_times.dir/fig4_times.cpp.o"
  "CMakeFiles/fig4_times.dir/fig4_times.cpp.o.d"
  "fig4_times"
  "fig4_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
