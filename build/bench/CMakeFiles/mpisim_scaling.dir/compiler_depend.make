# Empty compiler generated dependencies file for mpisim_scaling.
# This may be replaced when dependencies are built.
