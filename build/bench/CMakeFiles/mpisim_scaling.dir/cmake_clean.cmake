file(REMOVE_RECURSE
  "CMakeFiles/mpisim_scaling.dir/mpisim_scaling.cpp.o"
  "CMakeFiles/mpisim_scaling.dir/mpisim_scaling.cpp.o.d"
  "mpisim_scaling"
  "mpisim_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisim_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
