# Empty dependencies file for polynomial_eval.
# This may be replaced when dependencies are built.
