file(REMOVE_RECURSE
  "CMakeFiles/polynomial_eval.dir/polynomial_eval.cpp.o"
  "CMakeFiles/polynomial_eval.dir/polynomial_eval.cpp.o.d"
  "polynomial_eval"
  "polynomial_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polynomial_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
