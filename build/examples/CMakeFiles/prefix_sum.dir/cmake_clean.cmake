file(REMOVE_RECURSE
  "CMakeFiles/prefix_sum.dir/prefix_sum.cpp.o"
  "CMakeFiles/prefix_sum.dir/prefix_sum.cpp.o.d"
  "prefix_sum"
  "prefix_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
