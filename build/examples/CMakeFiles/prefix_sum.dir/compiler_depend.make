# Empty compiler generated dependencies file for prefix_sum.
# This may be replaced when dependencies are built.
