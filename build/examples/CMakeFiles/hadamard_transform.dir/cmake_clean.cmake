file(REMOVE_RECURSE
  "CMakeFiles/hadamard_transform.dir/hadamard_transform.cpp.o"
  "CMakeFiles/hadamard_transform.dir/hadamard_transform.cpp.o.d"
  "hadamard_transform"
  "hadamard_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadamard_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
