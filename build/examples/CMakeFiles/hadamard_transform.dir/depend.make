# Empty dependencies file for hadamard_transform.
# This may be replaced when dependencies are built.
