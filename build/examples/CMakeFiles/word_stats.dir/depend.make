# Empty dependencies file for word_stats.
# This may be replaced when dependencies are built.
