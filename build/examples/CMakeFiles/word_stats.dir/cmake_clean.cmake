file(REMOVE_RECURSE
  "CMakeFiles/word_stats.dir/word_stats.cpp.o"
  "CMakeFiles/word_stats.dir/word_stats.cpp.o.d"
  "word_stats"
  "word_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
