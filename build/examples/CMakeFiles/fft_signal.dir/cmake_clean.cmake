file(REMOVE_RECURSE
  "CMakeFiles/fft_signal.dir/fft_signal.cpp.o"
  "CMakeFiles/fft_signal.dir/fft_signal.cpp.o.d"
  "fft_signal"
  "fft_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
