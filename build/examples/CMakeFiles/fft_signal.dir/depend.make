# Empty dependencies file for fft_signal.
# This may be replaced when dependencies are built.
