
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cluster_reduce.cpp" "examples/CMakeFiles/cluster_reduce.dir/cluster_reduce.cpp.o" "gcc" "examples/CMakeFiles/cluster_reduce.dir/cluster_reduce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpisim/CMakeFiles/pls_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/forkjoin/CMakeFiles/pls_forkjoin.dir/DependInfo.cmake"
  "/root/repo/build/src/simmachine/CMakeFiles/pls_simmachine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
