file(REMOVE_RECURSE
  "CMakeFiles/cluster_reduce.dir/cluster_reduce.cpp.o"
  "CMakeFiles/cluster_reduce.dir/cluster_reduce.cpp.o.d"
  "cluster_reduce"
  "cluster_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
