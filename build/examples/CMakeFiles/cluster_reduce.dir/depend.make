# Empty dependencies file for cluster_reduce.
# This may be replaced when dependencies are built.
