# Empty dependencies file for pls_forkjoin.
# This may be replaced when dependencies are built.
