file(REMOVE_RECURSE
  "libpls_forkjoin.a"
)
