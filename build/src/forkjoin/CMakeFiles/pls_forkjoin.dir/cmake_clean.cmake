file(REMOVE_RECURSE
  "CMakeFiles/pls_forkjoin.dir/pool.cpp.o"
  "CMakeFiles/pls_forkjoin.dir/pool.cpp.o.d"
  "libpls_forkjoin.a"
  "libpls_forkjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pls_forkjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
