# Empty dependencies file for pls_mpisim.
# This may be replaced when dependencies are built.
