file(REMOVE_RECURSE
  "libpls_mpisim.a"
)
