file(REMOVE_RECURSE
  "CMakeFiles/pls_mpisim.dir/communicator.cpp.o"
  "CMakeFiles/pls_mpisim.dir/communicator.cpp.o.d"
  "libpls_mpisim.a"
  "libpls_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pls_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
