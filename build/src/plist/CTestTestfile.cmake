# CMake generated Testfile for 
# Source directory: /root/repo/src/plist
# Build directory: /root/repo/build/src/plist
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
