file(REMOVE_RECURSE
  "libpls_simmachine.a"
)
