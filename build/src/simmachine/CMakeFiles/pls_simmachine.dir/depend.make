# Empty dependencies file for pls_simmachine.
# This may be replaced when dependencies are built.
