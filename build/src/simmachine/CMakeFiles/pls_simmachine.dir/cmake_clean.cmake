file(REMOVE_RECURSE
  "CMakeFiles/pls_simmachine.dir/scheduler.cpp.o"
  "CMakeFiles/pls_simmachine.dir/scheduler.cpp.o.d"
  "libpls_simmachine.a"
  "libpls_simmachine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pls_simmachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
